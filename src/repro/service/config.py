"""Declarative configuration for release sessions.

A :class:`SessionConfig` is the single place a deployment describes its
release pipeline: who the users are (correlation models), what is
published (query), how much budget each time point gets (scalar, vector
or an Algorithm-2/3 :class:`~repro.core.budget.BudgetAllocation`), what
happens when the alpha-DP_T promise would break (:class:`AlphaPolicy`
with ``reject`` / ``clamp`` / ``warn`` modes), which accounting backend
runs underneath, and the operational knobs (shared solution cache,
checkpoint cadence, async-queue bound, noise seed).

:class:`BudgetSchedule` resolves the budget spec per time point, including
streams of unknown horizon (constant budgets and horizon-free Algorithm-2
allocations extend forever; vectors and Algorithm-3 allocations are
exhausted after their declared horizon).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Union

import numpy as np

from ..core.budget import BudgetAllocation, validate_epsilon, validate_epsilons
from ..exceptions import InvalidPrivacyParameterError
from .backends import DEFAULT_FLEET_THRESHOLD, normalise_correlations

__all__ = [
    "AlphaPolicy",
    "BudgetSchedule",
    "SessionConfig",
    "ALPHA_MODES",
]

#: What to do when a release would push worst-case TPL above ``alpha``:
#: ``reject`` refuses it (state rolled back, nothing published), ``clamp``
#: spends the largest feasible fraction of the requested budget, ``warn``
#: lets it through with a ``RuntimeWarning``.
ALPHA_MODES = ("reject", "clamp", "warn")


@dataclass(frozen=True)
class AlphaPolicy:
    """The alpha-DP_T enforcement policy of a session.

    Attributes
    ----------
    alpha:
        The leakage bound, or ``None`` for accounting without enforcement.
    mode:
        One of :data:`ALPHA_MODES`.
    clamp_resolution:
        Bisection resolution of ``clamp`` mode, as a fraction of the
        requested budget; the spent budget is within this fraction of the
        largest feasible one.
    """

    alpha: Optional[float] = None
    mode: str = "reject"
    clamp_resolution: float = 1e-6

    def __post_init__(self) -> None:
        if self.alpha is not None and (
            not np.isfinite(self.alpha) or self.alpha <= 0
        ):
            raise InvalidPrivacyParameterError(
                f"alpha must be finite and > 0, got {self.alpha}"
            )
        if self.mode not in ALPHA_MODES:
            raise ValueError(
                f"alpha mode must be one of {ALPHA_MODES}, got {self.mode!r}"
            )
        if not 0 < self.clamp_resolution < 1:
            raise ValueError(
                "clamp_resolution must be in (0, 1), got "
                f"{self.clamp_resolution}"
            )


class BudgetSchedule:
    """Resolve a budget spec into the epsilon of each 1-based time point.

    * a scalar is a constant schedule for any horizon (zero is legal:
      zero-budget time points are accounted but never published);
    * a sequence covers exactly ``len(sequence)`` time points;
    * a :class:`BudgetAllocation` is materialised for the declared
      ``horizon``; without one, Algorithm-2 (``upper_bound``) allocations
      extend forever at their constant budget, while Algorithm-3
      (``quantified``) allocations need the horizon to place their
      boosted last release and are rejected up front.
    """

    def __init__(
        self,
        budgets: Union[float, "np.ndarray", BudgetAllocation],
        horizon: Optional[int] = None,
    ) -> None:
        if horizon is not None and horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self._declared_horizon = horizon
        self._constant: Optional[float] = None
        self._vector: Optional[np.ndarray] = None
        if isinstance(budgets, BudgetAllocation):
            if horizon is not None:
                self._vector = budgets.epsilons(horizon)
            elif budgets.method == "upper_bound":
                # Theorem 5: the same budget at every time point bounds the
                # supremum, so the schedule is horizon-free.
                self._constant = float(budgets.epsilon_middle)
            else:
                raise ValueError(
                    "a quantified (Algorithm 3) allocation needs a declared "
                    "horizon; pass SessionConfig(horizon=...) or use an "
                    "upper_bound allocation for open-ended streams"
                )
        elif np.isscalar(budgets):
            self._constant = validate_epsilon(budgets, name="budget")
        else:
            self._vector = validate_epsilons(np.asarray(budgets), horizon)

    @property
    def horizon(self) -> Optional[int]:
        """Number of time points this schedule covers (``None`` =
        unbounded)."""
        if self._vector is not None:
            return int(self._vector.shape[0])
        return self._declared_horizon

    def epsilon_for(self, t: int) -> float:
        """The budget of 1-based time point ``t``."""
        if t < 1:
            raise ValueError(f"t must be >= 1, got {t}")
        if self._constant is not None:
            if self._declared_horizon is not None and t > self._declared_horizon:
                raise ValueError(
                    f"budget schedule exhausted: t={t} beyond declared "
                    f"horizon {self._declared_horizon}"
                )
            return self._constant
        assert self._vector is not None
        if t > self._vector.shape[0]:
            raise ValueError(
                f"budget schedule exhausted: t={t} beyond horizon "
                f"{self._vector.shape[0]}"
            )
        return float(self._vector[t - 1])


@dataclass(frozen=True)
class SessionConfig:
    """Everything a :class:`~repro.service.session.ReleaseSession` needs.

    Attributes
    ----------
    correlations:
        One ``(P_B, P_F)`` pair, an ``AdversaryT``, or a mapping
        ``user -> pair / AdversaryT`` -- exactly what both accountants
        accept.
    budgets:
        Scalar / per-time vector / :class:`BudgetAllocation`.
    query:
        Optional :class:`~repro.data.queries.SnapshotQuery`; without one
        the session accounts leakage but publishes nothing.
    alpha, alpha_mode, clamp_resolution:
        The :class:`AlphaPolicy` (see there).
    backend:
        ``"auto"`` (by population size), ``"scalar"`` or ``"fleet"``.
    shards:
        Number of worker processes for the fleet path.  ``1`` (the
        default) keeps accounting in-process; ``>= 2`` partitions
        cohorts across that many processes behind a scatter/gather
        coordinator (:class:`~repro.service.sharding.ShardedFleetBackend`,
        bit-identical to the in-process fleet backend).  Sharding implies
        the fleet engine, so it cannot be combined with
        ``backend="scalar"``.
    shard_transport:
        How the coordinator reaches its shard workers: ``"pipe"`` (the
        default -- forked processes over multiprocessing pipes) or
        ``"socket"`` (length-prefixed frames over TCP,
        :mod:`repro.net`).  Both are bit-identical; socket workers can
        live on other hosts.
    shard_addresses:
        Optional ``("host:port", ...)`` of already-running
        ``repro shard-worker`` processes to dial instead of spawning
        local workers.  Implies ``shard_transport="socket"`` and pins
        ``shards`` to the number of addresses.
    fleet_threshold:
        Population size at which ``auto`` switches to the fleet backend.
    horizon:
        Declared stream length; required for vector budgets (implicitly)
        and quantified allocations, optional otherwise.
    cache_size:
        Max entries of the shared Algorithm-1
        :class:`~repro.fleet.solution_cache.SolutionCache` threaded
        through whichever backend runs (``None`` = library default).
        With ``shards >= 2`` caches cannot cross process boundaries;
        each worker builds a *private* cache of this size, so the
        memory bound is per process.
    checkpoint_dir, checkpoint_every:
        Write a backend checkpoint to ``checkpoint_dir`` after every
        ``checkpoint_every`` accounted releases.
    wal_dir, wal_fsync, wal_compact_every:
        Durability policy (:mod:`repro.durability`).  With ``wal_dir``
        set, every ingested window is appended to a write-ahead log
        there *before* any accounting mutation, so a crash loses nothing
        (:meth:`~repro.service.session.ReleaseSession.recover` replays
        the tail bit-identically).  ``wal_fsync`` is ``"always"`` (every
        append is durable before ``ingest`` returns), ``"batch"``
        (group commit: appends mark the log dirty and one fsync runs per
        drained queue burst / per ``ingest_window`` -- no submitter is
        acknowledged before its window is durable, but a burst shares
        one disk flush), or ``"never"`` (leave flushing to the OS --
        process crashes are still safe, power loss may cost the
        un-synced tail).  ``wal_compact_every`` folds the log into a
        backend snapshot every that many accounted releases, keeping
        both recovery time and log size flat in horizon.
    queue_maxsize:
        Bound of the async ingestion queue (backpressure threshold).
    queue_offload:
        Run the accounting consumer on a dedicated worker thread (one
        ordered lane per session) instead of the event loop thread.
        Bit-identical either way -- only the thread changes -- but the
        loop stays free for I/O, so under concurrent serve traffic the
        queue drains real backlogs as coalesced windows.  Default on;
        turn off to get the pre-offload inline drain (benchmark
        baselines do).
    window_size:
        Ingestion window: :meth:`~repro.service.session.ReleaseSession.run`
        coalesces this many snapshots per backend entry, and queued
        ``aingest`` submissions are drained in batches up to this size.
        ``1`` (the default) is event-at-a-time ingestion.  Windowed and
        per-event ingestion are bit-identical; larger windows amortise
        the per-event Python overhead (see ``benchmarks/bench_window.py``).
        With ``checkpoint_every``, cadence is evaluated at window
        boundaries, so checkpoints land between windows.
    seed:
        Noise randomness (anything ``numpy.random.default_rng`` accepts).
    """

    correlations: object
    budgets: object
    query: Optional[object] = None
    alpha: Optional[float] = None
    alpha_mode: str = "reject"
    clamp_resolution: float = 1e-6
    backend: str = "auto"
    shards: int = 1
    shard_transport: str = "pipe"
    shard_addresses: Optional[tuple] = None
    fleet_threshold: int = DEFAULT_FLEET_THRESHOLD
    horizon: Optional[int] = None
    cache_size: Optional[int] = None
    checkpoint_dir: Optional[Union[str, Path]] = None
    checkpoint_every: Optional[int] = None
    wal_dir: Optional[Union[str, Path]] = None
    wal_fsync: str = "always"
    wal_compact_every: Optional[int] = None
    queue_maxsize: int = 64
    queue_offload: bool = True
    window_size: int = 1
    seed: object = None

    def __post_init__(self) -> None:
        normalise_correlations(self.correlations)  # fail fast when empty
        self.alpha_policy()  # validates alpha / mode / resolution
        self.budget_schedule()  # validates the budget spec
        if self.backend not in ("auto", "scalar", "fleet"):
            raise ValueError(
                "backend must be 'auto', 'scalar' or 'fleet', got "
                f"{self.backend!r}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shards > 1 and self.backend == "scalar":
            raise ValueError(
                "sharded accounting runs on the fleet engine; "
                "backend='scalar' cannot be combined with shards="
                f"{self.shards}"
            )
        if self.shard_transport not in ("pipe", "socket"):
            raise ValueError(
                "shard_transport must be 'pipe' or 'socket', got "
                f"{self.shard_transport!r}"
            )
        if self.shard_addresses is not None:
            if not self.shard_addresses:
                raise ValueError(
                    "shard_addresses must name at least one worker"
                )
            if self.shard_transport != "socket":
                object.__setattr__(self, "shard_transport", "socket")
            object.__setattr__(
                self, "shard_addresses", tuple(self.shard_addresses)
            )
            if self.shards > 1 and self.shards != len(self.shard_addresses):
                raise ValueError(
                    f"shards={self.shards} disagrees with the "
                    f"{len(self.shard_addresses)} shard_addresses given; "
                    "drop shards and let the addresses decide"
                )
            object.__setattr__(self, "shards", len(self.shard_addresses))
            if self.backend == "scalar":
                raise ValueError(
                    "shard_addresses runs on the fleet engine; it cannot "
                    "be combined with backend='scalar'"
                )
        if self.fleet_threshold < 1:
            raise ValueError(
                f"fleet_threshold must be >= 1, got {self.fleet_threshold}"
            )
        if self.queue_maxsize < 1:
            raise ValueError(
                f"queue_maxsize must be >= 1, got {self.queue_maxsize}"
            )
        if self.window_size < 1:
            raise ValueError(
                f"window_size must be >= 1, got {self.window_size}"
            )
        if self.checkpoint_every is not None:
            if self.checkpoint_every < 1:
                raise ValueError(
                    "checkpoint_every must be >= 1, got "
                    f"{self.checkpoint_every}"
                )
            if self.checkpoint_dir is None:
                raise ValueError(
                    "checkpoint_every requires checkpoint_dir"
                )
        if self.wal_fsync not in ("always", "batch", "never"):
            raise ValueError(
                "wal_fsync must be 'always', 'batch' or 'never', got "
                f"{self.wal_fsync!r}"
            )
        if self.wal_compact_every is not None:
            if self.wal_compact_every < 1:
                raise ValueError(
                    "wal_compact_every must be >= 1, got "
                    f"{self.wal_compact_every}"
                )
            if self.wal_dir is None:
                raise ValueError("wal_compact_every requires wal_dir")
        if self.cache_size is not None and self.cache_size < 1:
            raise ValueError(
                f"cache_size must be >= 1, got {self.cache_size}"
            )

    def alpha_policy(self) -> AlphaPolicy:
        """The validated :class:`AlphaPolicy` of this config."""
        return AlphaPolicy(
            alpha=self.alpha,
            mode=self.alpha_mode,
            clamp_resolution=self.clamp_resolution,
        )

    def budget_schedule(self) -> BudgetSchedule:
        """A fresh :class:`BudgetSchedule` for this config's budget spec."""
        return BudgetSchedule(self.budgets, self.horizon)

    def user_correlations(self) -> Mapping[object, object]:
        """The normalised ``user -> correlations`` mapping."""
        return normalise_correlations(self.correlations)
