"""Structured release events emitted by :class:`~repro.service.session.ReleaseSession`.

Every ingest produces exactly one :class:`ReleaseEvent` describing what
happened to that time point: whether an aggregate was published, under
which (possibly clamped) budget, and where the fleet-wide worst-case TPL
stands afterwards.  Events are plain frozen dataclasses with a JSON-safe
:meth:`ReleaseEvent.payload`, so they can be logged, streamed over a wire
(``repro serve``) or compared bit-for-bit across backends in the parity
suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

__all__ = [
    "ReleaseEvent",
    "RELEASED",
    "ACCOUNTED",
    "CLAMPED",
    "WARNED",
    "REJECTED",
    "EVENT_STATUSES",
]

#: The release was published under the requested budget.
RELEASED = "released"
#: Zero-budget time point: accounted (the recursions advance) but nothing
#: was published -- the explicit zero-budget semantics of
#: :func:`repro.core.budget.validate_epsilon`.
ACCOUNTED = "accounted"
#: The requested budget would have broken the alpha bound; the largest
#: feasible fraction of it was spent instead (``alpha_mode="clamp"``).
CLAMPED = "clamped"
#: The alpha bound was exceeded but the release went through anyway
#: (``alpha_mode="warn"``); a ``RuntimeWarning`` was emitted.
WARNED = "warned"
#: The release was refused and rolled back (``alpha_mode="reject"``);
#: nothing was published and the accounting state is unchanged.
REJECTED = "rejected"

EVENT_STATUSES = (RELEASED, ACCOUNTED, CLAMPED, WARNED, REJECTED)


@dataclass(frozen=True)
class ReleaseEvent:
    """One time point as seen by a release session.

    Attributes
    ----------
    t:
        1-based index of the time point this event targeted.  Rejected
        events do not advance the accounting horizon, so the next attempt
        reuses the same ``t``.
    status:
        One of :data:`EVENT_STATUSES`.
    requested_epsilon:
        The budget asked for (from the schedule or the ``ingest`` call).
    epsilon:
        The budget actually spent: equal to ``requested_epsilon`` for
        released/warned events, smaller for clamped ones, ``0.0`` for
        rejected ones.
    overrides:
        Per-user budgets actually applied (scaled together with
        ``epsilon`` when clamped), or ``None``.
    max_tpl:
        Fleet-wide worst-case temporal privacy leakage *after* this event.
    remaining_alpha:
        Headroom to the configured bound (``None`` without a bound).
    true_answer, noisy_answer:
        Exact and perturbed query answers; ``None`` when nothing was
        published (no query/snapshot, zero budget, or rejection).
    backend:
        Name of the accounting backend that processed the event
        (``"scalar"`` or ``"fleet"``).
    message:
        Human-readable detail for clamped/warned/rejected events.
    """

    t: int
    status: str
    requested_epsilon: float
    epsilon: float
    max_tpl: float
    backend: str
    remaining_alpha: Optional[float] = None
    overrides: Optional[Mapping[object, float]] = None
    true_answer: Optional[np.ndarray] = None
    noisy_answer: Optional[np.ndarray] = None
    message: Optional[str] = None

    @property
    def published(self) -> bool:
        """Whether a noisy aggregate left the server at this time point."""
        return self.noisy_answer is not None

    @property
    def absolute_error(self) -> float:
        """L1 error of the published answer (``0.0`` when unpublished)."""
        if self.noisy_answer is None or self.true_answer is None:
            return 0.0
        return float(np.abs(self.noisy_answer - self.true_answer).sum())

    def payload(self, *, include_true_answer: bool = False) -> dict:
        """JSON-safe dict of this event (arrays as lists, user ids as
        strings), used by ``repro serve`` and the parity suite.

        The exact query answer is **redacted by default**: a payload is
        what leaves the trusted server, and shipping ``true_answer``
        alongside the noisy one would void the DP guarantee.  Pass
        ``include_true_answer=True`` only for trusted-side diagnostics
        (utility measurement, parity testing).
        """
        return {
            "t": self.t,
            "status": self.status,
            "requested_epsilon": self.requested_epsilon,
            "epsilon": self.epsilon,
            "max_tpl": self.max_tpl,
            "remaining_alpha": self.remaining_alpha,
            "backend": self.backend,
            "overrides": (
                {str(user): eps for user, eps in self.overrides.items()}
                if self.overrides
                else None
            ),
            "true_answer": (
                self.true_answer.tolist()
                if include_true_answer and self.true_answer is not None
                else None
            ),
            "noisy_answer": (
                None
                if self.noisy_answer is None
                else self.noisy_answer.tolist()
            ),
            "message": self.message,
        }
