"""The unified release session: one front door over both accounting paths.

:class:`ReleaseSession` is the Fig.-1 pipeline as a long-lived service
object.  It is configured declaratively (:class:`~repro.service.config.
SessionConfig`), runs on either accounting backend (scalar or fleet,
chosen automatically by population size), and ingests snapshots either
one at a time (:meth:`ReleaseSession.ingest`, or asynchronously with
backpressure via :meth:`ReleaseSession.aingest`) or **windowed**
(:meth:`ReleaseSession.ingest_window`): a whole
:class:`~repro.service.window.ReleaseWindow` of snapshots enters the
backend in one call, amortising backend entry, alpha probing, schedule
resolution and checkpoint-cadence checks, while still emitting one
structured :class:`~repro.service.events.ReleaseEvent` per time point.
``ingest`` is the one-element window; windowed and per-event ingestion
are bit-identical by construction (the parity suite enforces it).

Alpha enforcement is a *session* concern, not a backend concern: the
backends expose ``add_window`` + ``rollback``, and the session implements
the configured policy on top (reject / clamp / warn).  The whole window
is probed in one backend call; because the per-step worst-TPL series is
non-decreasing, the first violating step is read straight off the result,
the suffix from that step on is rolled back, and only the violating step
itself is re-decided with the per-event policy (clamp mode bisects the
largest feasible fraction of the requested budget using
probe-and-rollback, which is deterministic and therefore bit-identical
across backends and window sizes).
"""

from __future__ import annotations

import asyncio
import warnings
from pathlib import Path
from typing import Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..core.budget import validate_epsilon
from ..core.leakage import LeakageProfile
from ..fleet.solution_cache import SolutionCache
from ..mechanisms.base import as_rng
from ..mechanisms.laplace import LaplaceMechanism
from ..obs.metrics import NULL_REGISTRY
from .async_ingest import BoundedIngestQueue
from .backends import (
    AccountantBackend,
    FleetAccountantBackend,
    ScalarAccountantBackend,
    SCALAR_MANIFEST_NAME,
    make_backend,
)
from .config import SessionConfig
from .events import (
    ACCOUNTED,
    CLAMPED,
    REJECTED,
    RELEASED,
    WARNED,
    ReleaseEvent,
)
from .window import ReleaseWindow, WindowStep

__all__ = ["ReleaseSession"]

#: Absolute slack on alpha comparisons, matching the accountants' own
#: rollback tolerance so the session and a bound accountant agree on what
#: counts as a violation.
_ALPHA_TOL = 1e-12

#: Bisection levels the batched clamp evaluates per ``probe_scales``
#: backend entry -- one dyadic subtree of at most ``2**k - 1`` candidate
#: scales per entry.  4 levels turn the ~20 round-trips of the default
#: ``clamp_resolution=1e-6`` into 5 of 15 candidates each; deeper trees
#: save round-trips but the speculative candidate count doubles per
#: level (measured: depth 4 beats 3 and 5 on the in-process backends).
_PROBE_LEVELS = 4


class ReleaseSession:
    """Ingest snapshots, publish noisy aggregates, account the leakage.

    Parameters
    ----------
    config:
        The declarative session description.
    backend:
        Optional pre-built :class:`AccountantBackend`; by default one is
        constructed from the config (``auto`` selection by population
        size).  Used by :meth:`restore` and by tests that need to inject
        a specific backend instance.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  By default
        the session (and every layer below it) runs on the no-op
        :data:`~repro.obs.metrics.NULL_REGISTRY`; passing a real registry
        turns on per-ingest/per-window latency histograms, per-status
        event counters, alpha probe/rollback counts, queue depth
        timeseries and backend timings, surfaced through
        ``summary()["metrics"]``.  Instrumentation never changes a float
        operation or RNG draw (the metrics parity suite pins events,
        noise and TPL series bit-identical either way).

    Examples
    --------
    >>> from repro.data import HistogramQuery
    >>> from repro.markov import two_state_matrix
    >>> from repro.service import ReleaseSession, SessionConfig
    >>> import numpy as np
    >>> P = two_state_matrix(0.8, 0.0)
    >>> session = ReleaseSession(SessionConfig(
    ...     correlations=(P, P), budgets=0.1,
    ...     query=HistogramQuery(2), seed=0))
    >>> event = session.ingest(np.array([0, 1, 1]))
    >>> event.status
    'released'
    >>> event.max_tpl >= 0.1
    True
    """

    def __init__(
        self,
        config: SessionConfig,
        *,
        backend: Optional[AccountantBackend] = None,
        cache: Optional[SolutionCache] = None,
        registry=None,
        wal=None,
    ) -> None:
        self._config = config
        self._policy = config.alpha_policy()
        self._schedule = config.budget_schedule()
        self._registry = registry if registry is not None else NULL_REGISTRY
        if cache is None:
            cache = (
                SolutionCache(maxsize=config.cache_size)
                if config.cache_size is not None
                else SolutionCache()
            )
        self._cache = cache
        self._registry.gauge_fn("session.cache", self._cache.stats)
        if backend is None:
            backend = make_backend(
                config.user_correlations(),
                backend=config.backend,
                fleet_threshold=config.fleet_threshold,
                cache=self._cache,
                shards=config.shards,
                registry=registry,
                shard_transport=config.shard_transport,
                shard_addresses=config.shard_addresses,
            )
        self._backend = backend
        #: Clamp probing strategy: batched dyadic-tree probes through
        #: ``backend.probe_scales`` (default) vs. the serial
        #: probe-and-rollback loop -- bit-identical chosen scales,
        #: toggleable for parity tests and benchmarks.
        self._clamp_batched = True
        self._rng = as_rng(config.seed)
        self._events: List[ReleaseEvent] = []
        self._pump: Optional[BoundedIngestQueue] = None
        self._in_pump = False  # drain-invoked ingest defers WAL sync
        self._queue_stats: Optional[dict] = None
        self._last_checkpoint_horizon = backend.horizon
        self._last_compact_horizon = backend.horizon
        self._replaying = False
        self._wal = None
        if wal is not None:
            self._attach_wal(wal)
        elif config.wal_dir is not None:
            from ..durability.wal import WriteAheadLog

            self._attach_wal(
                WriteAheadLog.create(
                    config.wal_dir,
                    partitions=getattr(backend, "n_shards", 1),
                    fsync=config.wal_fsync,
                    registry=self._registry,
                )
            )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(
        self,
        snapshot: Optional[np.ndarray] = None,
        *,
        epsilon: Optional[float] = None,
        overrides: Optional[Mapping[object, float]] = None,
    ) -> ReleaseEvent:
        """Process one time point and return its event.

        ``snapshot`` is the database column ``D^t`` (omit it for
        accounting-only sessions); ``epsilon`` overrides the schedule for
        this time point; ``overrides`` are per-user budgets (personalised
        DP).  Publication happens only after the accounting policy admits
        the release, so rejected time points never consume noise
        randomness -- a property the cross-backend parity suite relies
        on.

        This is the one-element window: ``ingest(x)`` ==
        ``ingest_window([x])[0]``, bit for bit.
        """
        with self._registry.span("session.ingest.seconds"):
            return self.ingest_window(
                ReleaseWindow.single(
                    snapshot, epsilon=epsilon, overrides=overrides
                )
            )[0]

    def ingest_window(
        self,
        window,
        *,
        epsilon: Optional[float] = None,
        overrides: Optional[Mapping[object, float]] = None,
    ) -> List[ReleaseEvent]:
        """Process a window of time points and return one event per step.

        ``window`` is a :class:`~repro.service.window.ReleaseWindow`, or
        any iterable of snapshots which is stacked into one (``epsilon``
        / ``overrides`` are then broadcast to every step; per-step specs
        go on the :class:`~repro.service.window.WindowStep`\\ s instead).

        The whole window enters the backend in one ``add_window`` call,
        amortising backend entry, schedule resolution, alpha probing and
        the checkpoint-cadence check across its steps; the events --
        statuses, budgets, TPL numbers, noise draws -- are bit-identical
        to ingesting the same steps one at a time.  When the alpha policy
        interrupts the window (reject/clamp), the suffix is rolled back,
        the violating step is re-decided by the per-event policy, and the
        remainder continues as a fresh window, so mid-window rejections
        reuse their time point exactly like per-event ingestion does.
        With ``checkpoint_every`` set, cadence is evaluated once per
        window, so checkpoints land on window boundaries.
        """
        if isinstance(window, ReleaseWindow):
            if epsilon is not None or overrides is not None:
                raise ValueError(
                    "epsilon/overrides broadcast only applies when "
                    "building a window from snapshots; put per-step specs "
                    "on the WindowSteps instead"
                )
        else:
            window = ReleaseWindow.from_snapshots(
                window, epsilon=epsilon, overrides=overrides
            )
        if self._wal is not None and not self._replaying:
            # Write-ahead: the *requested* window becomes durable before
            # any accounting mutation, so after a crash the log either
            # contains the window (replay redoes it exactly) or the
            # mutation never happened.
            self._wal.append(window, owner_of=self._wal_owner)
        events: List[ReleaseEvent] = []
        steps = list(window.steps)
        with self._registry.span("session.window.seconds"):
            while steps:
                steps = steps[self._ingest_chunk(steps, events) :]
        if not self._replaying:
            self._maybe_checkpoint()
            self._maybe_compact()
            if (
                self._wal is not None
                and not self._in_pump
                and self._wal.fsync_mode == "batch"
            ):
                # Direct (non-queued) ingestion has no drain burst to
                # share a group commit with: the window becomes durable
                # before the caller is acknowledged, amortised to one
                # sync across every partition it touched.
                self._wal.sync()
        return events

    def _ingest_chunk(
        self, steps: List[WindowStep], events: List[ReleaseEvent]
    ) -> int:
        """Apply a maximal prefix of ``steps`` in one backend call.

        Emits events for every decided step -- all of them, or (when an
        alpha violation interrupts reject/clamp mode) the clean prefix
        plus the violating step -- and returns how many were consumed.
        All budgets are validated before the backend is touched, so a bad
        step leaves the session unchanged.
        """
        horizon = self._backend.horizon
        requested: List[float] = []
        for i, step in enumerate(steps):
            if step.epsilon is not None:
                requested.append(validate_epsilon(step.epsilon))
            else:
                requested.append(self._schedule.epsilon_for(horizon + i + 1))
        overrides = [
            dict(step.overrides) if step.overrides else None for step in steps
        ]
        # Evaluate queries before the accounting mutation (the per-event
        # path always did): together with the backends' validate-first
        # contract this keeps a failing chunk atomic -- no events, no
        # state change -- which the async queue's per-item retry of a
        # failed window relies on.
        answers: List[Optional[np.ndarray]] = [
            np.atleast_1d(self._config.query(step.snapshot))
            if self._config.query is not None and step.snapshot is not None
            else None
            for step in steps
        ]
        result = self._backend.add_window(
            ReleaseWindow(
                WindowStep(epsilon=eps, overrides=ovr)
                for eps, ovr in zip(requested, overrides)
            )
        )
        worsts = result.max_tpls
        policy = self._policy
        stop = len(steps)  # first step that needs the per-event policy
        if policy.alpha is not None and policy.mode in ("reject", "clamp"):
            violating = np.flatnonzero(worsts > policy.alpha + _ALPHA_TOL)
            if violating.size:
                # The per-step worst-TPL series is non-decreasing, so the
                # prefix before the first violation is exactly what
                # per-event ingestion would have admitted; everything from
                # the violating step on is rolled back and re-decided.
                stop = int(violating[0])
                self._backend.rollback(len(steps) - stop)
                self._registry.counter("session.alpha.rollbacks").inc()
        for i in range(stop):
            status, message = RELEASED, None
            worst = float(worsts[i])
            if policy.alpha is not None and worst > policy.alpha + _ALPHA_TOL:
                # warn mode: the bound is exceeded but the release stands.
                message = self._violation_detail(requested[i], worst)
                warnings.warn(message, RuntimeWarning, stacklevel=4)
                status = WARNED
            events.append(
                self._emit(
                    t=horizon + i + 1,
                    true_answer=answers[i],
                    requested=requested[i],
                    applied=requested[i],
                    applied_overrides=overrides[i],
                    worst=worst,
                    status=status,
                    message=message,
                )
            )
        if stop == len(steps):
            return stop
        applied, applied_overrides, worst, status, message = (
            self._apply_policy(requested[stop], overrides[stop])
        )
        events.append(
            self._emit(
                t=horizon + stop + 1,
                true_answer=answers[stop],
                requested=requested[stop],
                applied=applied,
                applied_overrides=applied_overrides,
                worst=worst,
                status=status,
                message=message,
            )
        )
        return stop + 1

    def _emit(
        self,
        *,
        t: int,
        true_answer: Optional[np.ndarray],
        requested: float,
        applied: float,
        applied_overrides: Optional[Mapping[object, float]],
        worst: float,
        status: str,
        message: Optional[str],
    ) -> ReleaseEvent:
        """Publish (when admitted) and record the event of one decided
        time point.  Noise is drawn here, in step order, only for
        admitted positive-budget steps -- rejected time points never
        consume randomness."""
        noisy_answer = None
        if true_answer is not None and status != REJECTED and applied > 0.0:
            mechanism = LaplaceMechanism(
                applied, self._config.query.sensitivity
            )
            noisy_answer = mechanism.perturb(true_answer, self._rng)
        elif status == RELEASED and applied == 0.0:
            status = ACCOUNTED
        alpha = self._policy.alpha
        event = ReleaseEvent(
            t=t,
            status=status,
            requested_epsilon=requested,
            epsilon=applied,
            max_tpl=worst,
            backend=self._backend.name,
            remaining_alpha=None if alpha is None else alpha - worst,
            overrides=applied_overrides,
            true_answer=true_answer,
            noisy_answer=noisy_answer,
            message=message,
        )
        self._events.append(event)
        self._registry.counter("session.events", status=status).inc()
        return event

    def run(self, dataset) -> List[ReleaseEvent]:
        """Ingest every snapshot of a
        :class:`~repro.data.trajectory.TrajectoryDataset`, coalescing
        ``SessionConfig.window_size`` snapshots per backend entry, and
        return the events of this call."""
        size = self._config.window_size
        events: List[ReleaseEvent] = []
        # Materialise one window of snapshots at a time, not the whole
        # horizon.
        for lo in range(1, dataset.horizon + 1, size):
            hi = min(lo + size, dataset.horizon + 1)
            events.extend(
                self.ingest_window(
                    ReleaseWindow.from_snapshots(
                        dataset.snapshot(t) for t in range(lo, hi)
                    )
                )
            )
        return events

    async def aingest(
        self,
        snapshot: Optional[np.ndarray] = None,
        *,
        epsilon: Optional[float] = None,
        overrides: Optional[Mapping[object, float]] = None,
    ) -> ReleaseEvent:
        """Asynchronous :meth:`ingest` through the bounded session queue.

        Concurrent producers are serialised in submission order; when the
        queue is full (``SessionConfig.queue_maxsize``) submitters are
        parked until the accounting consumer catches up -- the
        backpressure seam future sharding plugs into.  Whenever producers
        outpace the consumer, the backlog is drained in windows of up to
        ``SessionConfig.window_size`` submissions per backend entry
        (results are still delivered per submitter and are bit-identical
        to per-event draining).  Call :meth:`aclose` (or use ``async
        with``) to drain on shutdown.
        """
        if self._pump is None:
            commit = None
            if self._wal is not None and self._wal.fsync_mode == "batch":
                # Group commit: the queue runs one WAL sync per drained
                # burst, and withholds every submitter's event until it
                # lands -- nobody is acknowledged before their window is
                # durable, but a burst shares one disk flush.
                commit = self._wal.sync
            self._pump = BoundedIngestQueue(
                self._process_queued,
                maxsize=self._config.queue_maxsize,
                batch_size=self._config.window_size,
                process_batch=self._process_queued_window,
                registry=self._registry,
                offload=self._config.queue_offload,
                commit=commit,
            )
        return await self._pump.submit((snapshot, epsilon, overrides))

    async def aingest_window(
        self,
        window,
        *,
        epsilon: Optional[float] = None,
        overrides: Optional[Mapping[object, float]] = None,
        return_exceptions: bool = False,
    ) -> List[ReleaseEvent]:
        """Asynchronous :meth:`ingest_window` through the bounded queue.

        The window's steps enter the queue as individual submissions in
        step order (so they share the queue's backpressure bound with
        every other producer) and are coalesced by the queue's batch
        drain into backend windows of up to
        ``SessionConfig.window_size`` -- bit-identical numbers either
        way, by the windowed-vs-per-event parity guarantee.  Returns one
        event per step; with ``return_exceptions=True`` a failing step
        yields its exception in place of an event instead of failing the
        whole call (the TCP server uses this to emit per-step error
        lines).
        """
        if isinstance(window, ReleaseWindow):
            if epsilon is not None or overrides is not None:
                raise ValueError(
                    "epsilon/overrides broadcast only applies when "
                    "building a window from snapshots; put per-step specs "
                    "on the WindowSteps instead"
                )
        else:
            window = ReleaseWindow.from_snapshots(
                window, epsilon=epsilon, overrides=overrides
            )
        return list(
            await asyncio.gather(
                *(
                    self.aingest(
                        step.snapshot,
                        epsilon=step.epsilon,
                        overrides=step.overrides,
                    )
                    for step in window.steps
                ),
                return_exceptions=return_exceptions,
            )
        )

    def _process_queued(self, item) -> ReleaseEvent:
        snapshot, epsilon, overrides = item
        self._in_pump = True
        try:
            return self.ingest(snapshot, epsilon=epsilon, overrides=overrides)
        finally:
            self._in_pump = False

    def _process_queued_window(self, items) -> List[ReleaseEvent]:
        """Drain one coalesced batch of queued submissions as a window
        (one event per submission, in submission order).  ``_in_pump``
        defers the batch-mode WAL sync to the queue's group commit."""
        self._in_pump = True
        try:
            return self.ingest_window(
                ReleaseWindow(
                    WindowStep(
                        snapshot=snapshot, epsilon=epsilon, overrides=overrides
                    )
                    for snapshot, epsilon, overrides in items
                )
            )
        finally:
            self._in_pump = False

    async def aclose(self) -> None:
        """Drain and stop the async ingestion queue (idempotent).  The
        queue's final operational counters stay available through
        :meth:`summary`."""
        if self._pump is not None:
            await self._pump.close()
            self._queue_stats = self._pump.stats()
            self._pump = None

    def close(self) -> None:
        """Release backend resources and flush the write-ahead log
        (idempotent).  In-process backends hold none; a sharded backend
        shuts its worker processes down, so call this (or use the
        backend as a context manager) when a sharded session is done."""
        if self._wal is not None:
            self._wal.close()
        closer = getattr(self._backend, "close", None)
        if closer is not None:
            closer()

    async def __aenter__(self) -> "ReleaseSession":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Alpha policy
    # ------------------------------------------------------------------
    def _apply_policy(
        self,
        requested: float,
        overrides: Optional[Mapping[object, float]],
    ) -> Tuple[float, Optional[Mapping[object, float]], float, str, Optional[str]]:
        """Decide one alpha-violating step under reject/clamp.

        Returns ``(applied_epsilon, applied_overrides, max_tpl, status,
        message)``; on return the backend state reflects the decision.
        Warn mode never reaches here -- a warned release stands as
        applied, so :meth:`_ingest_chunk` handles it without rolling the
        window back.
        """
        policy = self._policy
        worst = self._backend.add_release(requested, overrides)
        if policy.alpha is None or worst <= policy.alpha + _ALPHA_TOL:
            return requested, overrides, worst, RELEASED, None
        detail = self._violation_detail(requested, worst)
        self._backend.rollback_last()
        self._registry.counter("session.alpha.rollbacks").inc()
        if policy.mode == "reject":
            return 0.0, None, self._backend.max_tpl(), REJECTED, detail
        # Clamp: largest feasible fraction of the requested budgets.
        scale = self._clamp_scale(requested, overrides, policy.alpha)
        applied = requested * scale
        if applied <= 0.0:
            message = detail + "; no positive fraction of it fits"
            return 0.0, None, self._backend.max_tpl(), REJECTED, message
        applied_overrides = (
            {user: eps * scale for user, eps in overrides.items()}
            if overrides
            else None
        )
        worst = self._backend.add_release(applied, applied_overrides)
        message = detail + f"; clamped to eps={applied:g}"
        return applied, applied_overrides, worst, CLAMPED, message

    def _violation_detail(self, requested: float, worst: float) -> str:
        """The human-readable alpha-violation message shared by every
        policy mode (and therefore identical across window sizes)."""
        return (
            f"release of eps={requested:g} raises worst-case TPL to "
            f"{worst:.6f} > alpha={self._policy.alpha:g}"
        )

    def _clamp_scale(
        self,
        requested: float,
        overrides: Optional[Mapping[object, float]],
        alpha: float,
    ) -> float:
        """Bisect the largest scale in [0, 1] whose scaled release keeps
        worst-case TPL within ``alpha``.

        The serial bisection's midpoints form a deterministic dyadic
        tree: every candidate the next ``_PROBE_LEVELS`` levels could
        visit is enumerated with the serial arithmetic (``mid = 0.5 *
        (lo + hi)``, gated on ``hi - lo > clamp_resolution``), evaluated
        in **one** read-only ``probe_scales`` backend entry, and the
        bisection then walks the precomputed answers locally.  The
        chosen scale is bit-identical to :meth:`_clamp_scale_serial`
        (parity-pinned), with the ~20 serial backend round-trips
        collapsed into ~4.  ``scale == 0`` is always feasible: a
        zero-budget release can never raise TPL (``L(alpha) <= alpha``),
        so the invariant maintained by reject/clamp modes keeps the
        bracket valid.
        """
        # Normalise once: an empty-but-not-None mapping must not cost a
        # dict rebuild (or a scaled copy) per probe.
        overrides = dict(overrides) if overrides else None
        if not self._clamp_batched:
            return self._clamp_scale_serial(requested, overrides, alpha)
        resolution = self._policy.clamp_resolution
        lo, hi = 0.0, 1.0  # hi was just observed infeasible
        while hi - lo > resolution:
            mids: list = []

            def collect(lo_: float, hi_: float, depth: int) -> None:
                if depth == 0 or not hi_ - lo_ > resolution:
                    return
                mid = 0.5 * (lo_ + hi_)
                mids.append(mid)
                collect(lo_, mid, depth - 1)
                collect(mid, hi_, depth - 1)

            collect(lo, hi, _PROBE_LEVELS)
            worsts = self._backend.probe_scales(requested, overrides, mids)
            self._registry.counter("session.alpha.probes").inc(len(mids))
            answers = dict(zip(mids, (float(w) for w in worsts)))
            for _ in range(_PROBE_LEVELS):
                if not hi - lo > resolution:
                    break
                mid = 0.5 * (lo + hi)
                if answers[mid] <= alpha + _ALPHA_TOL:
                    lo = mid
                else:
                    hi = mid
        return lo

    def _clamp_scale_serial(
        self,
        requested: float,
        overrides: Optional[Mapping[object, float]],
        alpha: float,
    ) -> float:
        """The original one-round-trip-per-midpoint bisection, kept as
        the parity/benchmark reference for the batched path.  Each probe
        applies the scaled release, reads the resulting TPL and rolls it
        back -- exact state restoration, deterministic probes, hence
        bit-identical results across backends.  ``overrides`` arrives
        normalised (``None`` when empty)."""
        lo, hi = 0.0, 1.0  # hi was just observed infeasible
        while hi - lo > self._policy.clamp_resolution:
            mid = 0.5 * (lo + hi)
            scaled_overrides = (
                {user: eps * mid for user, eps in overrides.items()}
                if overrides
                else None
            )
            worst = self._backend.add_release(
                requested * mid, scaled_overrides
            )
            self._backend.rollback_last()
            self._registry.counter("session.alpha.probes").inc()
            if worst <= alpha + _ALPHA_TOL:
                lo = mid
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def config(self) -> SessionConfig:
        return self._config

    @property
    def backend(self) -> AccountantBackend:
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def cache(self) -> SolutionCache:
        """The shared Algorithm-1 solution cache of this session."""
        return self._cache

    @property
    def registry(self):
        """The metrics registry this session reports into (the no-op
        :data:`~repro.obs.metrics.NULL_REGISTRY` unless one was passed)."""
        return self._registry

    @property
    def events(self) -> Tuple[ReleaseEvent, ...]:
        """Every event emitted by this session object, oldest first."""
        return tuple(self._events)

    @property
    def horizon(self) -> int:
        """Accounted releases so far (rejected attempts excluded)."""
        return self._backend.horizon

    @property
    def users(self) -> Iterable[object]:
        return self._backend.users

    def max_tpl(self) -> float:
        return self._backend.max_tpl()

    def remaining_alpha(self) -> Optional[float]:
        if self._policy.alpha is None:
            return None
        return self._policy.alpha - self._backend.max_tpl()

    def profile(self, user=None) -> LeakageProfile:
        return self._backend.profile(user)

    def summary(self) -> dict:
        """Operational snapshot: backend, population, horizon, per-status
        event counts, worst-case TPL, alpha headroom, and -- once
        :meth:`aingest` has run -- the async queue's counters (depth
        high-water mark, largest coalesced window), which operators use
        to size ``window_size`` / ``queue_maxsize``.  ``"cache"`` is the
        Algorithm-1 :class:`SolutionCache`'s hit/miss/eviction counters
        (warm-start efficacy of the batched grid solves); ``"metrics"``
        is the registry snapshot -- latency histograms, per-status event
        counters, backend timings -- and is ``{}`` on an un-instrumented
        session."""
        counts: dict = {}
        for event in self._events:
            counts[event.status] = counts.get(event.status, 0) + 1
        if self._pump is not None:
            queue_stats: Optional[dict] = self._pump.stats()
        else:
            queue_stats = self._queue_stats
        return {
            "backend": self._backend.name,
            "users": self._backend.n_users,
            "horizon": self._backend.horizon,
            "events": len(self._events),
            "status_counts": counts,
            "max_tpl": self._backend.max_tpl(),
            "remaining_alpha": self.remaining_alpha(),
            "queue": queue_stats,
            "cache": self._cache.stats(),
            "metrics": self._registry.snapshot(),
        }

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, directory=None) -> Path:
        """Write a backend checkpoint to ``directory`` (default: the
        configured ``checkpoint_dir``)."""
        target = directory if directory is not None else self._config.checkpoint_dir
        if target is None:
            raise ValueError(
                "no checkpoint directory: pass one or set "
                "SessionConfig.checkpoint_dir"
            )
        path = self._backend.save(target)
        self._last_checkpoint_horizon = self._backend.horizon
        return path

    def _maybe_checkpoint(self) -> None:
        every = self._config.checkpoint_every
        if every is None:
            return
        horizon = self._backend.horizon
        if horizon - self._last_checkpoint_horizon >= every:
            self.checkpoint()

    # ------------------------------------------------------------------
    # Durability (write-ahead log)
    # ------------------------------------------------------------------
    @property
    def wal(self):
        """The attached :class:`~repro.durability.wal.WriteAheadLog`
        (``None`` unless ``SessionConfig.wal_dir`` is set or the session
        was built by :meth:`recover`)."""
        return self._wal

    def _attach_wal(self, wal) -> None:
        self._wal = wal
        self._registry.gauge_fn("wal.log_bytes", wal.size_bytes)

    def _wal_owner(self, user) -> int:
        """Which log partition records ``user``'s overrides (the owning
        shard for a sharded backend, partition 0 otherwise -- including
        unknown users, so replay re-raises the original error)."""
        owners = getattr(self._backend, "_user_shard", None)
        if owners is None:
            return 0
        return owners.get(user, 0)

    def compact_wal(self) -> Path:
        """Fold the log's tail into a fresh backend snapshot (atomic
        manifest swap; see :mod:`repro.durability.compact`), capturing
        the noise-RNG state so recovery resumes draws exactly.  Returns
        the snapshot directory."""
        if self._wal is None:
            raise ValueError(
                "no write-ahead log attached: set SessionConfig.wal_dir"
            )
        from ..durability.wal import encode_rng_state

        with self._registry.span("wal.compact.seconds"):
            snapshot = self._wal.compact(
                self._backend.save,
                horizon=self._backend.horizon,
                rng_state=encode_rng_state(self._rng.bit_generator.state),
                partitions=getattr(self._backend, "n_shards", 1),
            )
        self._last_compact_horizon = self._backend.horizon
        return snapshot

    def _maybe_compact(self) -> None:
        every = self._config.wal_compact_every
        if every is None or self._wal is None:
            return
        if self._backend.horizon - self._last_compact_horizon >= every:
            self.compact_wal()

    def _replay(self, records) -> int:
        """Re-ingest decoded WAL records through the ordinary ingestion
        path (appends and cadence suppressed).  Replay reproduces the
        original run bit for bit -- including its failures: a window the
        original rejected with an error re-raises identically and is
        skipped, leaving the same state behind."""
        from ..durability.wal import decode_window

        self._replaying = True
        try:
            replayed = 0
            for record in records:
                try:
                    self.ingest_window(decode_window(record))
                except Exception:
                    # The original ingest failed the same way after the
                    # append; the backends' validate-first contract means
                    # it mutated nothing then, so skipping mutates
                    # nothing now.
                    self._registry.counter("wal.replay_errors").inc()
                else:
                    replayed += 1
        finally:
            self._replaying = False
        self._registry.counter("wal.replayed_windows").inc(replayed)
        return replayed

    @classmethod
    def recover(
        cls, config: SessionConfig, wal_dir=None, *, registry=None
    ) -> "ReleaseSession":
        """Rebuild a session from its write-ahead log.

        Opens the log (repairing any torn tail), restores the latest
        compaction snapshot if one exists -- re-sharding it first when
        ``config.shards`` asks for a different worker count -- resumes
        the noise RNG from the snapshot's recorded state, and replays
        the tail records through the ordinary ingestion path.  The
        result is bit-identical to the uninterrupted run: same events,
        same noise draws, same TPL series, same alpha decisions (the
        crash-recovery parity suite enforces this on all three
        backends).  The log stays attached, so the recovered session
        keeps appending where the crashed one stopped.
        """
        from ..durability.wal import WriteAheadLog, decode_rng_state

        directory = wal_dir if wal_dir is not None else config.wal_dir
        if directory is None:
            raise ValueError(
                "no WAL directory: pass one or set SessionConfig.wal_dir"
            )
        wal = WriteAheadLog.open(
            directory, fsync=config.wal_fsync, registry=registry
        )
        records = wal.tail_records()
        cache = (
            SolutionCache(maxsize=config.cache_size)
            if config.cache_size is not None
            else SolutionCache()
        )
        if wal.snapshot_path is not None:
            backend = cls._restore_backend(
                config, wal.snapshot_path, cache=cache, registry=registry
            )
            session = cls(
                config, backend=backend, cache=cache, registry=registry, wal=wal
            )
            if wal.rng_state is not None:
                session._rng.bit_generator.state = decode_rng_state(
                    wal.rng_state
                )
            session._last_compact_horizon = wal.snapshot_horizon
        else:
            session = cls(config, cache=cache, registry=registry, wal=wal)
        session._replay(records)
        if wal.partitions != getattr(session._backend, "n_shards", 1):
            # Recovery re-sharded the backend; rewrite the log for the
            # new partition layout so future appends split correctly.
            session.compact_wal()
        return session

    @classmethod
    def restore(
        cls, config: SessionConfig, directory, *, registry=None
    ) -> "ReleaseSession":
        """Rebuild a session from a checkpoint written by any backend.

        The accounting state (and therefore every leakage query) is
        restored bit-for-bit; the event log is not checkpointed -- events
        describe what *this process* emitted.  The backend kind (scalar,
        fleet, or sharded fleet) is read off the checkpoint; an explicit,
        conflicting ``SessionConfig.backend`` is an error (checkpoints do
        not convert between backends), while ``"auto"`` accepts whatever
        is on disk.  Fleet and sharded checkpoints may be restored at a
        *different* ``config.shards``: the checkpoint is resharded by
        cohort content-hash first (:func:`~repro.durability.reshard.
        reshard_checkpoint`), bit-identically.  Scalar checkpoints cannot
        be sharded.  When ``directory`` holds a write-ahead log rather
        than a bare checkpoint, this delegates to :meth:`recover`.
        """
        from ..durability.wal import is_wal_dir

        directory = Path(directory)
        if is_wal_dir(directory):
            return cls.recover(config, directory, registry=registry)
        cache = (
            SolutionCache(maxsize=config.cache_size)
            if config.cache_size is not None
            else SolutionCache()
        )
        backend = cls._restore_backend(
            config, directory, cache=cache, registry=registry
        )
        return cls(config, backend=backend, cache=cache, registry=registry)

    @classmethod
    def _restore_backend(
        cls, config: SessionConfig, directory, *, cache, registry
    ) -> AccountantBackend:
        """Build the backend a checkpoint describes, resharding fleet /
        sharded checkpoints when ``config.shards`` conflicts."""
        from .sharding import SHARD_MANIFEST_NAME, ShardedFleetBackend

        directory = Path(directory)
        if (directory / SCALAR_MANIFEST_NAME).exists():
            kind = "scalar"
        elif (directory / SHARD_MANIFEST_NAME).exists():
            kind = "sharded"
        else:
            kind = "fleet"
        # Sharding rides the fleet engine, so a sharded checkpoint
        # satisfies a config pinned to "fleet" (and vice versa is an
        # error handled below via the shards count).
        pinned = config.backend
        if pinned not in ("auto", "fleet" if kind == "sharded" else kind):
            raise ValueError(
                f"checkpoint in {directory} was written by the {kind} "
                f"backend but the config pins backend="
                f"{pinned!r}; checkpoints do not convert between "
                "backends"
            )
        if kind == "scalar":
            if config.shards > 1:
                raise ValueError(
                    f"checkpoint in {directory} was written by the scalar "
                    f"backend but the config requests shards="
                    f"{config.shards}; scalar checkpoints cannot be "
                    "sharded (restore through the fleet backend instead)"
                )
            return ScalarAccountantBackend.restore(
                directory,
                config.user_correlations(),
                cache=cache,
                registry=registry,
            )
        if kind == "sharded":
            import json

            try:
                manifest = json.loads(
                    (directory / SHARD_MANIFEST_NAME).read_text(
                        encoding="utf-8"
                    )
                )
            except ValueError as error:
                raise ValueError(
                    f"torn or corrupt shard manifest in {directory}; "
                    "refusing to restore"
                ) from error
            saved = int(manifest.get("shards", 0))
            if config.shards > 1 and config.shards != saved:
                return cls._restore_resharded(
                    directory,
                    config.shards,
                    cache=cache,
                    registry=registry,
                    transport=config.shard_transport,
                    shard_addresses=config.shard_addresses,
                )
            return ShardedFleetBackend.restore(
                directory,
                cache=cache,
                shards=config.shards if config.shards > 1 else None,
                registry=registry,
                transport=config.shard_transport,
                shard_addresses=config.shard_addresses,
            )
        if config.shards > 1:
            return cls._restore_resharded(
                directory,
                config.shards,
                cache=cache,
                registry=registry,
                transport=config.shard_transport,
                shard_addresses=config.shard_addresses,
            )
        return FleetAccountantBackend.restore(
            directory, cache=cache, registry=registry
        )

    @classmethod
    def _restore_resharded(
        cls,
        directory,
        shards: int,
        *,
        cache,
        registry,
        transport="pipe",
        shard_addresses=None,
    ) -> AccountantBackend:
        """Reshard a checkpoint into a scratch directory and restore the
        sharded backend from it (workers load their shard during
        ``restore``, so the scratch copy is deleted before returning)."""
        import tempfile

        from ..durability.reshard import reshard_checkpoint
        from .sharding import ShardedFleetBackend

        with tempfile.TemporaryDirectory(prefix="repro-reshard-") as scratch:
            reshard_checkpoint(directory, scratch, shards)
            return ShardedFleetBackend.restore(
                scratch,
                cache=cache,
                registry=registry,
                transport=transport,
                shard_addresses=shard_addresses,
            )

    def __repr__(self) -> str:
        return (
            f"ReleaseSession(backend={self._backend.name!r}, "
            f"users={self._backend.n_users}, horizon={self.horizon}, "
            f"alpha={self._policy.alpha}, mode={self._policy.mode!r})"
        )
