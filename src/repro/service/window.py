"""Windowed ingestion value types: the batch-first accounting currency.

The paper's BPL/FPL/TPL recursions are sequential per time point, but the
*API* does not have to be: a :class:`ReleaseWindow` stacks ``T`` snapshots
together with their per-step budget specs so one backend entry can advance
the recursions over the whole window.  :class:`WindowResult` carries back
the per-step fleet-wide worst-case TPL series -- exactly the numbers ``T``
sequential ``add_release`` calls would have returned, bit for bit, which
is what lets :class:`~repro.service.session.ReleaseSession` emit one
:class:`~repro.service.events.ReleaseEvent` per step while paying the
backend round-trip once per window.

``add_release`` remains on the backend protocol as a thin one-element
window wrapper, so event-at-a-time callers keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np

__all__ = ["WindowStep", "ReleaseWindow", "WindowResult"]


@dataclass(frozen=True)
class WindowStep:
    """One time point inside a :class:`ReleaseWindow`.

    Attributes
    ----------
    snapshot:
        The database column ``D^t`` (``None`` for accounting-only steps).
    epsilon:
        Budget for this step; ``None`` defers to the session's schedule.
        Backends require a resolved (concrete) value.
    overrides:
        Optional per-user budgets (personalised DP) for this step.
    """

    snapshot: Optional[np.ndarray] = None
    epsilon: Optional[float] = None
    overrides: Optional[Mapping[Hashable, float]] = None


class ReleaseWindow:
    """An immutable stack of :class:`WindowStep`\\ s ingested as one batch.

    Windows are pure data: building one performs no validation beyond
    non-emptiness, and the same window can be replayed through any backend.

    Examples
    --------
    >>> window = ReleaseWindow.from_snapshots([None, None], epsilon=0.1)
    >>> len(window)
    2
    >>> window.steps[0].epsilon
    0.1
    """

    __slots__ = ("_steps",)

    def __init__(self, steps: Iterable[WindowStep]) -> None:
        steps = tuple(steps)
        if not steps:
            raise ValueError("a release window needs at least one step")
        for step in steps:
            if not isinstance(step, WindowStep):
                raise TypeError(
                    f"window steps must be WindowStep, got {type(step).__name__}"
                )
        self._steps = steps

    @classmethod
    def single(
        cls,
        snapshot: Optional[np.ndarray] = None,
        *,
        epsilon: Optional[float] = None,
        overrides: Optional[Mapping[Hashable, float]] = None,
    ) -> "ReleaseWindow":
        """The one-element window behind every ``add_release`` wrapper."""
        return cls(
            (WindowStep(snapshot=snapshot, epsilon=epsilon, overrides=overrides),)
        )

    @classmethod
    def from_snapshots(
        cls,
        snapshots: Iterable[Optional[np.ndarray]],
        *,
        epsilon: Optional[float] = None,
        overrides: Optional[Mapping[Hashable, float]] = None,
    ) -> "ReleaseWindow":
        """Stack ``snapshots`` into a window, broadcasting one ``epsilon``
        / ``overrides`` spec to every step (``None`` = session schedule)."""
        return cls(
            WindowStep(snapshot=s, epsilon=epsilon, overrides=overrides)
            for s in snapshots
        )

    @property
    def steps(self) -> Tuple[WindowStep, ...]:
        return self._steps

    @property
    def epsilons(self) -> Tuple[Optional[float], ...]:
        """Per-step budgets (``None`` entries await schedule resolution)."""
        return tuple(step.epsilon for step in self._steps)

    def is_resolved(self) -> bool:
        """Whether every step carries a concrete budget (what backends
        require; the session resolves its schedule before calling in)."""
        return all(step.epsilon is not None for step in self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[WindowStep]:
        return iter(self._steps)

    def __repr__(self) -> str:
        return f"ReleaseWindow(steps={len(self._steps)})"


@dataclass(frozen=True)
class WindowResult:
    """What a backend reports after applying one :class:`ReleaseWindow`.

    Attributes
    ----------
    max_tpls:
        Fleet-wide worst-case TPL *after each step* of the window --
        element ``i`` equals what ``add_release`` would have returned for
        step ``i``, bit for bit.  Non-decreasing (appending releases can
        only grow leakage), which is what lets the session locate the
        first alpha-violating step without re-probing the prefix.
    """

    max_tpls: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.max_tpls, dtype=float)
        arr.setflags(write=False)
        object.__setattr__(self, "max_tpls", arr)

    @property
    def final_max_tpl(self) -> float:
        """Worst-case TPL after the whole window."""
        if self.max_tpls.size == 0:
            return 0.0
        return float(self.max_tpls[-1])

    def __len__(self) -> int:
        return int(self.max_tpls.shape[0])
