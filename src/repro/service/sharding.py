"""Sharded fleet accounting: cohorts scattered across worker processes.

The paper's BPL/FPL/TPL recursions are strictly sequential *per user*,
but cohorts (users sharing a ``(P_B, P_F)`` pair) are mutually
independent: the fleet-wide worst-case TPL is a plain maximum over
per-cohort contributions, and ``max`` is exact in floating point.  That
makes the fleet engine shardable with **no accuracy cost**:

* cohorts are partitioned across ``N`` worker processes by a stable hash
  of their canonical correlation digest (:func:`shard_of_digest`), so the
  same population always lands on the same shards -- across restarts,
  across machines;
* each worker owns a private :class:`~repro.fleet.engine.FleetAccountant`
  over its cohorts and answers a tiny command protocol over a pipe;
* the coordinator (:class:`ShardedFleetBackend`) implements the full
  :class:`~repro.service.backends.AccountantBackend` protocol by
  *scattering* every ``add_window`` to all shards and *gathering* the
  per-shard per-step worst-TPL series, merged by elementwise ``max`` --
  bit-identical to the single-process
  :class:`~repro.service.backends.FleetAccountantBackend`, the same hard
  guarantee the scalar/fleet and windowed/per-event parity suites already
  enforce (``tests/test_service_sharding.py`` extends them).

Per-user budget overrides are routed to the single shard owning that
user's cohort; rollbacks (including the session's probe-and-rollback
alpha clamping) broadcast to every shard, so the probe/undo dance stays
exact.  Checkpoints are one directory holding a shard manifest plus one
ordinary fleet checkpoint (``.npz`` + manifest) per shard, written and
restored in parallel.

This is the scatter/gather step the
:class:`~repro.service.async_ingest.BoundedIngestQueue` behind
:meth:`~repro.service.session.ReleaseSession.aingest` was designed to
feed: nothing upstream of the queue changes, windows drained from the
backlog simply fan out across processes.

Worker processes are daemonic (they die with the coordinator) and are
shut down deterministically by :meth:`ShardedFleetBackend.close` (also a
context manager).  Shard workers build private
:class:`~repro.fleet.solution_cache.SolutionCache` instances; caches are
transparent state, so per-process caches do not affect the numbers.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from pathlib import Path
from typing import Dict, Hashable, Iterable, List, Mapping, Optional

import numpy as np

from ..core.budget import validate_epsilon
from ..core.leakage import LeakageProfile
from ..fleet.checkpoint import load_checkpoint, save_checkpoint
from ..fleet.cohorts import correlation_digest, normalise_pair
from ..fleet.engine import FleetAccountant
from ..fleet.solution_cache import SolutionCache
from ..obs.metrics import NULL_REGISTRY
from .window import ReleaseWindow, WindowResult

__all__ = [
    "ShardedFleetBackend",
    "shard_of_digest",
    "SHARD_MANIFEST_NAME",
    "SHARD_CHECKPOINT_KIND",
]

SHARD_MANIFEST_NAME = "shard_manifest.json"
SHARD_CHECKPOINT_KIND = "sharded_fleet_checkpoint"
_SHARD_FORMAT_VERSION = 1


def shard_of_digest(digest: str, shards: int) -> int:
    """Deterministic shard index of a cohort digest.

    Uses a content hash rather than Python's salted ``hash()`` so the
    cohort -> shard assignment is stable across processes, machines and
    checkpoint/restore cycles -- a cohort's accounting state must always
    find its way back to the shard that owns it.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    prefix = hashlib.sha256(digest.encode("utf-8")).digest()[:8]
    return int.from_bytes(prefix, "big") % shards


def _mp_context():
    """Fork where available (cheap, Linux); the default context (spawn)
    elsewhere.  Both work: worker arguments are picklable and the worker
    entry point is module-level."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _shard_worker(conn, correlations, restore_dir, cache_maxsize) -> None:
    """Worker-process entry point: one private engine, one command loop.

    Commands arrive as ``(op, args)`` pairs; every command is answered
    with ``("ok", result)`` or ``("error", exception)`` so the
    coordinator can re-raise backend errors in the caller's process.
    """
    try:
        cache = (
            SolutionCache(maxsize=cache_maxsize)
            if cache_maxsize is not None
            else SolutionCache()
        )
        if restore_dir is not None:
            engine = load_checkpoint(restore_dir, cache=cache)
        else:
            engine = FleetAccountant(correlations, cache=cache)
    except BaseException as error:  # noqa: BLE001 -- relayed as handshake
        # Setup failures (missing checkpoint dir, bad correlations)
        # must reach the coordinator as the real exception, not as an
        # opaque dead pipe.
        try:
            conn.send(("error", error))
        finally:
            conn.close()
        return
    conn.send(("ok", None))  # startup handshake: engine is ready
    try:
        while True:
            try:
                op, args = conn.recv()
            except EOFError:
                break
            if op == "close":
                try:
                    conn.send(("ok", None))
                except (BrokenPipeError, OSError):
                    pass  # coordinator already hung up
                break
            try:
                if op == "add_window":
                    epsilons, overrides = args
                    result = engine.add_window(epsilons, overrides)
                elif op == "rollback":
                    result = engine.rollback(args)
                elif op == "max_tpl":
                    result = engine.max_tpl()
                elif op == "profile":
                    result = engine.profile(args)
                elif op == "user_epsilons":
                    result = engine.user_epsilons(args)
                elif op == "save":
                    result = str(save_checkpoint(engine, args))
                elif op == "cache_maxsize":
                    result = engine.cache.maxsize
                elif op == "describe":
                    result = {
                        "users": list(engine.users),
                        "epsilons": [float(e) for e in engine.epsilons],
                        "n_cohorts": engine.n_cohorts,
                    }
                else:  # pragma: no cover - protocol bug, not user error
                    raise RuntimeError(f"unknown shard op {op!r}")
            except BaseException as error:  # noqa: BLE001 -- relayed
                reply = ("error", error)
            else:
                reply = ("ok", result)
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break  # coordinator gone; nothing left to serve
    finally:
        conn.close()


class ShardedFleetBackend:
    """Cohort-sharded fleet accounting behind the backend protocol.

    Parameters
    ----------
    correlations:
        Anything :func:`~repro.service.backends.normalise_correlations`
        accepts (the population must be non-empty).
    shards:
        Number of worker processes.  ``1`` is legal (useful for
        debugging the process plumbing) but the single-process
        :class:`~repro.service.backends.FleetAccountantBackend` is the
        better choice there.
    cache:
        Solution caches are process-local, so the coordinator cannot
        share this object with its workers; only its ``maxsize`` is
        honoured -- each worker builds a private
        :class:`SolutionCache` of that size, keeping the operator's
        per-process memory bound.  Caches are transparent state -- they
        never change the numbers.

    Notes
    -----
    Bit-identical to :class:`FleetAccountantBackend` on identical
    streams: each shard performs exactly the float operations the
    single-process engine performs for its cohorts, and the per-step
    worst-TPL merge is an elementwise ``max`` (exact).  A failed window
    is atomic: all validation happens in the coordinator before any
    shard is touched, and if a shard still fails mid-scatter the
    already-applied shards are rolled back before the error is re-raised
    (the async queue's per-item retry of a failed batch relies on this).
    A shard *process* dying is unrecoverable -- its cohorts' state is
    lost -- so any pipe failure closes the whole backend and raises;
    restart from the last checkpoint.
    """

    name = "sharded"
    supports_checkpoint = True

    def __init__(
        self,
        correlations,
        *,
        shards: int = 2,
        cache: Optional[SolutionCache] = None,
        registry=None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._registry = registry if registry is not None else NULL_REGISTRY
        # Import here: backends imports this module lazily (make_backend)
        # and this module needs backends' normaliser -- a top-level import
        # each way would be a cycle.
        from .backends import normalise_correlations

        users = normalise_correlations(correlations)
        partitions: List[Dict[Hashable, object]] = [{} for _ in range(shards)]
        self._user_shard: Dict[Hashable, int] = {}
        for user, value in users.items():
            pair = normalise_pair(value)
            index = shard_of_digest(correlation_digest(*pair), shards)
            partitions[index][user] = pair
            self._user_shard[user] = index
        self._epsilons: List[float] = []
        self._conns: Optional[list] = None
        self._procs: Optional[list] = None
        maxsize = cache.maxsize if cache is not None else None
        self._start_workers([(p, None, maxsize) for p in partitions])

    # -- worker lifecycle ----------------------------------------------
    def _start_workers(self, specs) -> None:
        ctx = _mp_context()
        conns, procs = [], []
        try:
            for correlations, restore_dir, cache_maxsize in specs:
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(child, correlations, restore_dir, cache_maxsize),
                    daemon=True,
                )
                proc.start()
                child.close()
                conns.append(parent)
                procs.append(proc)
        except BaseException:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.terminate()
            raise
        self._conns = conns
        self._procs = procs
        try:
            # Startup handshake: every worker reports its engine built
            # (or relays the real setup exception -- a missing shard
            # checkpoint surfaces as its FileNotFoundError, not as an
            # opaque dead pipe on the first command).
            self._gather(range(len(conns)))
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Shut the worker processes down (idempotent).  A closed backend
        answers no further queries; close it only when the session is
        done with it."""
        if self._conns is None:
            return
        for conn in self._conns:
            try:
                conn.send(("close", None))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
        self._conns = None
        self._procs = None

    def __enter__(self) -> "ShardedFleetBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- scatter/gather plumbing ---------------------------------------
    def _require_open(self) -> None:
        if self._conns is None:
            raise RuntimeError("ShardedFleetBackend is closed")

    def _fail(self, index: int, error: BaseException):
        """A shard process died.  Its cohorts' accounting state is gone,
        so the backend as a whole can no longer answer honestly -- and
        surviving shards may hold unread replies that would desynchronise
        the pipe protocol (a later query would read a stale answer).
        Tear everything down and surface one clear error; every
        subsequent call raises the explicit "closed" RuntimeError."""
        self.close()
        raise RuntimeError(
            f"shard {index} terminated unexpectedly; backend closed"
        ) from error

    def _send(self, index: int, op, args=None) -> None:
        try:
            self._conns[index].send((op, args))
        except (BrokenPipeError, OSError) as error:
            self._fail(index, error)

    def _recv(self, index: int):
        try:
            return self._conns[index].recv()
        except (EOFError, OSError) as error:
            self._fail(index, error)

    def _gather(self, indices) -> list:
        """Receive one reply per shard, re-raising the first *error
        payload* only after every reply has been collected (no shard is
        left with an unread response in its pipe).  A shard *dying*
        mid-gather instead closes the whole backend (:meth:`_fail`), so
        stale replies can never be misread later."""
        outcomes = [self._recv(i) for i in indices]
        for status, payload in outcomes:
            if status == "error":
                raise payload
        return [payload for _, payload in outcomes]

    def _broadcast(self, op, args=None) -> list:
        self._require_open()
        for index in range(len(self._conns)):
            self._send(index, op, args)
        return self._gather(range(len(self._conns)))

    def _call(self, index: int, op, args=None):
        self._require_open()
        self._send(index, op, args)
        return self._gather([index])[0]

    # -- stream interface ----------------------------------------------
    def add_window(self, window: ReleaseWindow) -> WindowResult:
        """Scatter a window to every shard and merge the per-step worst
        series by elementwise max.

        Validation (budgets, override users, override budgets) happens
        here, before any shard is touched, in exactly the order the
        single-process engine validates -- identical errors, and a
        failing window leaves every shard unchanged.
        """
        with self._registry.span(
            "backend.add_window.seconds", backend=self.name
        ):
            result = self._add_window(window)
        self._registry.counter("backend.steps", backend=self.name).inc(
            len(result.max_tpls)
        )
        return result

    def _add_window(self, window: ReleaseWindow) -> WindowResult:
        from .backends import _resolved_steps

        self._require_open()
        steps = _resolved_steps(window)
        epsilons = [validate_epsilon(eps) for eps, _ in steps]
        per_step = [dict(ovr) if ovr else {} for _, ovr in steps]
        n_shards = len(self._conns)
        split: List[List[Dict[Hashable, float]]] = [
            [{} for _ in steps] for _ in range(n_shards)
        ]
        for i, step_overrides in enumerate(per_step):
            for user, eps_u in step_overrides.items():
                owner = self._user_shard.get(user)
                if owner is None:
                    raise KeyError(f"override for unknown user {user!r}")
                validate_epsilon(eps_u, name="override epsilon")
                split[owner][i][user] = eps_u
        registry = self._registry
        t0 = time.perf_counter() if registry.enabled else 0.0
        for index in range(n_shards):
            self._send(index, "add_window", (epsilons, split[index]))
        if registry.enabled:
            registry.histogram("shard.scatter.seconds").observe(
                time.perf_counter() - t0
            )
        outcomes = []
        for i in range(n_shards):
            outcomes.append(self._recv(i))
            if registry.enabled:
                # Round-trip from scatter start to this shard's reply;
                # shard i's reply waits on shards < i being read first,
                # so the slowest shard dominates every later label.
                registry.histogram("shard.rpc.seconds", shard=i).observe(
                    time.perf_counter() - t0
                )
        errors = [payload for status, payload in outcomes if status == "error"]
        if errors:
            # Coordinator-side validation makes this unreachable for bad
            # input; it guards against shard-side faults such as a
            # SolverError mid-window.  The failing engine already unwound
            # itself (FleetAccountant truncates a half-applied window),
            # so rewinding the shards that applied restores the global
            # pre-window state exactly.  (A shard *dying* is handled
            # harder still: _send/_recv close the whole backend, since
            # that shard's state is unrecoverable.)
            for index, (status, _) in enumerate(outcomes):
                if status == "ok":
                    self._call(index, "rollback", len(epsilons))
            raise errors[0]
        self._epsilons.extend(epsilons)
        with registry.span("shard.merge.seconds"):
            merged = np.maximum.reduce([payload for _, payload in outcomes])
        return WindowResult(merged)

    def add_release(
        self,
        epsilon: float,
        overrides: Optional[Mapping[Hashable, float]] = None,
    ) -> float:
        """One-element-window compatibility wrapper over
        :meth:`add_window`."""
        return self.add_window(
            ReleaseWindow.single(epsilon=epsilon, overrides=overrides)
        ).final_max_tpl

    def rollback_last(self) -> None:
        if not self._epsilons:
            raise ValueError("no releases to roll back")
        self.rollback(1)

    def rollback(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if n > len(self._epsilons):
            raise ValueError(
                f"cannot roll back {n} releases; only "
                f"{len(self._epsilons)} recorded"
            )
        if n == 0:
            return
        self._broadcast("rollback", n)
        del self._epsilons[len(self._epsilons) - n :]

    # -- queries --------------------------------------------------------
    def max_tpl(self) -> float:
        """Worst TPL over all users and time points: the max over
        per-shard maxima (exact -- ``max`` is associative in floats)."""
        return max(self._broadcast("max_tpl"))

    def profile(self, user: Optional[Hashable] = None) -> LeakageProfile:
        if user is None:
            if len(self._user_shard) != 1:
                raise ValueError("multiple users tracked; specify which one")
            user = next(iter(self._user_shard))
        owner = self._user_shard.get(user)
        if owner is None:
            raise KeyError(f"unknown user {user!r}")
        return self._call(owner, "profile", user)

    def user_epsilons(self, user: Hashable) -> np.ndarray:
        owner = self._user_shard.get(user)
        if owner is None:
            raise KeyError(f"unknown user {user!r}")
        return self._call(owner, "user_epsilons", user)

    @property
    def horizon(self) -> int:
        return len(self._epsilons)

    @property
    def epsilons(self) -> np.ndarray:
        return np.asarray(self._epsilons, dtype=float)

    @property
    def users(self) -> Iterable[Hashable]:
        return self._user_shard.keys()

    @property
    def n_users(self) -> int:
        return len(self._user_shard)

    @property
    def n_shards(self) -> int:
        self._require_open()
        return len(self._conns)

    def shard_of(self, user: Hashable) -> int:
        """Which shard owns ``user``'s cohort (observability)."""
        owner = self._user_shard.get(user)
        if owner is None:
            raise KeyError(f"unknown user {user!r}")
        return owner

    def shard_sizes(self) -> List[int]:
        """Users per shard -- the balance operators watch when choosing
        a shard count for a given cohort population."""
        self._require_open()
        sizes = [0] * len(self._conns)
        for index in self._user_shard.values():
            sizes[index] += 1
        return sizes

    # -- checkpointing --------------------------------------------------
    def save(self, directory) -> Path:
        """Write one fleet checkpoint per shard plus the shard manifest.

        Shards persist in parallel (scatter the ``save``, then gather),
        each an ordinary ``.npz`` + manifest fleet checkpoint under
        ``shard_<i>/``.
        """
        self._require_open()
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        for index in range(len(self._conns)):
            self._send(index, "save", str(path / f"shard_{index}"))
        self._gather(range(len(self._conns)))
        manifest = {
            "format": _SHARD_FORMAT_VERSION,
            "kind": SHARD_CHECKPOINT_KIND,
            "shards": len(self._conns),
            "horizon": self.horizon,
            "n_users": len(self._user_shard),
        }
        (path / SHARD_MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
        return path

    @classmethod
    def restore(
        cls,
        directory,
        correlations=None,
        cache: Optional[SolutionCache] = None,
        *,
        shards: Optional[int] = None,
        registry=None,
    ) -> "ShardedFleetBackend":
        """Rebuild a backend from :meth:`save` output.

        Correlation models live in the per-shard ``.npz`` files, so
        ``correlations`` is accepted only for signature symmetry;
        ``cache`` contributes its ``maxsize`` to the workers' private
        caches (as in the constructor).  The checkpoint dictates the
        shard count; passing an explicit conflicting ``shards`` is an
        error (cohort -> shard assignment is part of the persisted
        state).
        """
        directory = Path(directory)
        manifest = json.loads(
            (directory / SHARD_MANIFEST_NAME).read_text(encoding="utf-8")
        )
        if manifest.get("kind") != SHARD_CHECKPOINT_KIND:
            raise ValueError(f"{directory} is not a sharded fleet checkpoint")
        if manifest.get("format") != _SHARD_FORMAT_VERSION:
            raise ValueError(
                f"unsupported sharded checkpoint format "
                f"{manifest.get('format')!r}"
            )
        saved_shards = int(manifest["shards"])
        if shards is not None and shards != saved_shards:
            raise ValueError(
                f"checkpoint in {directory} was written with "
                f"{saved_shards} shards but the config requests {shards}; "
                "re-sharding a checkpoint is not supported"
            )
        self = cls.__new__(cls)
        self._registry = registry if registry is not None else NULL_REGISTRY
        self._conns = None
        self._procs = None
        maxsize = cache.maxsize if cache is not None else None
        self._start_workers(
            [
                (None, str(directory / f"shard_{i}"), maxsize)
                for i in range(saved_shards)
            ]
        )
        self._user_shard = {}
        descriptions = self._broadcast("describe")
        for index, description in enumerate(descriptions):
            for user in description["users"]:
                self._user_shard[user] = index
        # Every shard records the full default-budget series (windows are
        # broadcast), so all copies must agree with each other and with
        # the manifest -- a partially written checkpoint (one shard's
        # save failed) must refuse to restore rather than merge phantom
        # releases into the privacy numbers.
        self._epsilons = [float(e) for e in descriptions[0]["epsilons"]]
        for index, description in enumerate(descriptions[1:], start=1):
            if [float(e) for e in description["epsilons"]] != self._epsilons:
                self.close()
                raise ValueError(
                    f"corrupt sharded checkpoint: shard {index}'s budget "
                    f"series disagrees with shard 0's (horizons "
                    f"{len(description['epsilons'])} vs "
                    f"{len(self._epsilons)}); the shards were not saved "
                    "from the same state"
                )
        if len(self._epsilons) != int(manifest["horizon"]):
            self.close()
            raise ValueError(
                f"corrupt sharded checkpoint: manifest horizon "
                f"{manifest['horizon']} != shard horizon {len(self._epsilons)}"
            )
        return self

    def __repr__(self) -> str:
        shards = "closed" if self._conns is None else len(self._conns)
        return (
            f"ShardedFleetBackend(users={len(self._user_shard)}, "
            f"shards={shards}, horizon={self.horizon})"
        )
