"""Sharded fleet accounting: cohorts scattered across worker processes.

The paper's BPL/FPL/TPL recursions are strictly sequential *per user*,
but cohorts (users sharing a ``(P_B, P_F)`` pair) are mutually
independent: the fleet-wide worst-case TPL is a plain maximum over
per-cohort contributions, and ``max`` is exact in floating point.  That
makes the fleet engine shardable with **no accuracy cost**:

* cohorts are partitioned across ``N`` worker processes by a stable hash
  of their canonical correlation digest (:func:`shard_of_digest`), so the
  same population always lands on the same shards -- across restarts,
  across machines;
* each worker owns a private :class:`~repro.fleet.engine.FleetAccountant`
  over its cohorts and answers a tiny command protocol over a
  :class:`~repro.net.transport.ShardTransport` -- either the original
  same-machine ``multiprocessing.Pipe`` or a length-prefixed framed
  socket (``repro shard-worker --listen``) for workers on other
  machines;
* the coordinator (:class:`ShardedFleetBackend`) implements the full
  :class:`~repro.service.backends.AccountantBackend` protocol by
  *scattering* every ``add_window`` to all shards and *gathering* the
  per-shard per-step worst-TPL series, merged by elementwise ``max`` --
  bit-identical to the single-process
  :class:`~repro.service.backends.FleetAccountantBackend`, the same hard
  guarantee the scalar/fleet and windowed/per-event parity suites already
  enforce (``tests/test_service_sharding.py`` and
  ``tests/test_net_parity.py`` extend them).

Per-user budget overrides are routed to the single shard owning that
user's cohort; rollbacks (including the session's probe-and-rollback
alpha clamping) broadcast to every shard, so the probe/undo dance stays
exact.  Checkpoints are one directory holding a shard manifest plus one
ordinary fleet checkpoint (``.npz`` + manifest) per shard, written and
restored in parallel.

**Worker failure is recoverable.**  The coordinator keeps an in-memory
journal of every mutation since the last checkpoint (windows with their
per-shard override splits, rollbacks).  When a transport fails or an
rpc times out, the coordinator respawns/reconnects the worker, rebuilds
its engine from the last checkpoint (or from the original partition
when none exists), replays the journal for that shard, and re-issues
the in-flight request -- every replayed operation performs exactly the
float operations of the uninterrupted run, so a killed worker rejoins
bit-identically.  Set ``auto_restore=False`` for the old fail-closed
behaviour (any worker death closes the backend).  ``health_interval``
adds an opportunistic ping sweep between operations and
``rpc_timeout`` bounds every reply wait; :meth:`check_health` runs the
sweep on demand.

Worker processes are daemonic (they die with the coordinator) and are
shut down deterministically by :meth:`ShardedFleetBackend.close` (also a
context manager).  Shard workers build private
:class:`~repro.fleet.solution_cache.SolutionCache` instances; caches are
transparent state, so per-process caches do not affect the numbers.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from pathlib import Path
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..core.budget import validate_epsilon
from ..core.leakage import LeakageProfile
from ..fleet.checkpoint import load_checkpoint, save_checkpoint
from ..fleet.cohorts import correlation_digest, normalise_pair
from ..fleet.engine import FleetAccountant
from ..fleet.solution_cache import SolutionCache
from ..net.frames import TransportClosed, TransportTimeout
from ..net.transport import (
    PipeTransport,
    ShardTransport,
    SocketTransport,
    parse_address,
)
from ..obs.metrics import NULL_REGISTRY
from .window import ReleaseWindow, WindowResult

__all__ = [
    "ShardedFleetBackend",
    "build_shard_engine",
    "run_shard_loop",
    "shard_dispatch",
    "shard_of_digest",
    "SHARD_MANIFEST_NAME",
    "SHARD_CHECKPOINT_KIND",
]

SHARD_MANIFEST_NAME = "shard_manifest.json"
SHARD_CHECKPOINT_KIND = "sharded_fleet_checkpoint"
_SHARD_FORMAT_VERSION = 1

#: Transports a coordinator can drive its workers over.
SHARD_TRANSPORTS = ("pipe", "socket")


def shard_of_digest(digest: str, shards: int) -> int:
    """Deterministic shard index of a cohort digest.

    Uses a content hash rather than Python's salted ``hash()`` so the
    cohort -> shard assignment is stable across processes, machines and
    checkpoint/restore cycles -- a cohort's accounting state must always
    find its way back to the shard that owns it.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    prefix = hashlib.sha256(digest.encode("utf-8")).digest()[:8]
    return int.from_bytes(prefix, "big") % shards


def _mp_context():
    """Fork where available (cheap, Linux); the default context (spawn)
    elsewhere.  Both work: worker arguments are picklable and the worker
    entry point is module-level."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def build_shard_engine(correlations, restore_dir, cache_maxsize):
    """Build one worker's private engine from its spec triple.

    The same triple travels as process arguments (pipe transport) or as
    the first frame after the handshake (socket transport).
    """
    cache = (
        SolutionCache(maxsize=cache_maxsize)
        if cache_maxsize is not None
        else SolutionCache()
    )
    if restore_dir is not None:
        return load_checkpoint(restore_dir, cache=cache)
    return FleetAccountant(correlations, cache=cache)


def shard_dispatch(engine: FleetAccountant, op: str, args):
    """Execute one coordinator command against a worker's engine."""
    if op == "add_window":
        epsilons, overrides = args
        return engine.add_window(epsilons, overrides)
    if op == "rollback":
        return engine.rollback(args)
    if op == "probe_scales":
        epsilon, overrides, scales = args
        return engine.probe_release_scales(epsilon, overrides, scales)
    if op == "max_tpl":
        return engine.max_tpl()
    if op == "profile":
        return engine.profile(args)
    if op == "user_epsilons":
        return engine.user_epsilons(args)
    if op == "save":
        return str(save_checkpoint(engine, args))
    if op == "cache_maxsize":
        return engine.cache.maxsize
    if op == "ping":
        # Cheap liveness + progress probe: no engine math, answers even
        # mid-journal so the coordinator's health sweep can tell "slow"
        # from "gone".
        return {
            "horizon": int(engine.epsilons.shape[0]),
            "n_cohorts": engine.n_cohorts,
        }
    if op == "describe":
        return {
            "users": list(engine.users),
            "epsilons": [float(e) for e in engine.epsilons],
            "n_cohorts": engine.n_cohorts,
        }
    raise RuntimeError(f"unknown shard op {op!r}")  # pragma: no cover


def run_shard_loop(channel, engine: FleetAccountant) -> bool:
    """Serve one coordinator over ``channel`` until it hangs up.

    ``channel`` is anything with ``send``/``recv`` message semantics --
    a ``multiprocessing`` connection or a
    :class:`~repro.net.transport.SocketTransport`.  Every command is
    answered with ``("ok", result)`` or ``("error", exception)`` so the
    coordinator can re-raise backend errors in the caller's process.
    Returns True if the coordinator sent an explicit ``close`` (session
    over), False if it merely disconnected (a socket worker goes back
    to accepting).
    """
    while True:
        try:
            op, args = channel.recv()
        except (EOFError, OSError):
            return False
        if op == "close":
            try:
                channel.send(("ok", None))
            except (BrokenPipeError, OSError):
                pass  # coordinator already hung up
            return True
        try:
            result = shard_dispatch(engine, op, args)
        except BaseException as error:  # noqa: BLE001 -- relayed
            reply = ("error", error)
        else:
            reply = ("ok", result)
        try:
            channel.send(reply)
        except (BrokenPipeError, OSError):
            return False  # coordinator gone; nothing left to serve


def _shard_worker(conn, correlations, restore_dir, cache_maxsize) -> None:
    """Pipe-transport worker-process entry point: one private engine,
    one command loop."""
    try:
        engine = build_shard_engine(correlations, restore_dir, cache_maxsize)
    except BaseException as error:  # noqa: BLE001 -- relayed as handshake
        # Setup failures (missing checkpoint dir, bad correlations)
        # must reach the coordinator as the real exception, not as an
        # opaque dead pipe.
        try:
            conn.send(("error", error))
        finally:
            conn.close()
        return
    conn.send(("ok", None))  # startup handshake: engine is ready
    try:
        run_shard_loop(conn, engine)
    finally:
        conn.close()


class ShardedFleetBackend:
    """Cohort-sharded fleet accounting behind the backend protocol.

    Parameters
    ----------
    correlations:
        Anything :func:`~repro.service.backends.normalise_correlations`
        accepts (the population must be non-empty).
    shards:
        Number of worker processes.  ``1`` is legal (useful for
        debugging the process plumbing) but the single-process
        :class:`~repro.service.backends.FleetAccountantBackend` is the
        better choice there.  Ignored when ``shard_addresses`` is given
        (one shard per address).
    cache:
        Solution caches are process-local, so the coordinator cannot
        share this object with its workers; only its ``maxsize`` is
        honoured -- each worker builds a private
        :class:`SolutionCache` of that size, keeping the operator's
        per-process memory bound.  Caches are transparent state -- they
        never change the numbers.
    transport:
        ``"pipe"`` (default): fork daemon workers driven over
        ``multiprocessing.Pipe``.  ``"socket"``: the same workers behind
        the framed TCP protocol -- spawned locally on loopback when
        ``shard_addresses`` is None, or dialled at the given
        ``HOST:PORT`` addresses (each running
        ``repro shard-worker --listen``).
    shard_addresses:
        Addresses of externally-managed workers; implies
        ``transport="socket"`` and ``shards=len(shard_addresses)``.
        Remote restore-from-checkpoint requires the checkpoint
        directory to be reachable from the worker (shared filesystem).
    auto_restore:
        When True (default) a failed worker is respawned/reconnected,
        rebuilt from the last checkpoint (or the original partition) and
        caught up from the coordinator's op journal -- bit-identically,
        because every replayed op performs exactly the float operations
        of the uninterrupted run.  When False any worker failure closes
        the whole backend (the pre-PR-8 behaviour).
    health_interval:
        Seconds between opportunistic ping sweeps, run at operation
        boundaries (no background thread -- the transports stay
        single-reader).  None (default) disables the sweep;
        :meth:`check_health` is always available on demand.
    rpc_timeout:
        Per-reply wait bound in seconds.  None (default) waits forever
        -- alpha-probe solves on large cohorts are legitimately slow,
        so timeouts are opt-in.  A timed-out shard is treated as dead
        (restored or failed per ``auto_restore``).

    Notes
    -----
    Bit-identical to :class:`FleetAccountantBackend` on identical
    streams: each shard performs exactly the float operations the
    single-process engine performs for its cohorts, and the per-step
    worst-TPL merge is an elementwise ``max`` (exact).  A failed window
    is atomic: all validation happens in the coordinator before any
    shard is touched, and if a shard still fails mid-scatter the
    already-applied shards are rolled back before the error is re-raised
    (the async queue's per-item retry of a failed batch relies on this).
    """

    name = "sharded"
    supports_checkpoint = True

    def __init__(
        self,
        correlations,
        *,
        shards: int = 2,
        cache: Optional[SolutionCache] = None,
        registry=None,
        transport: str = "pipe",
        shard_addresses=None,
        auto_restore: bool = True,
        health_interval: Optional[float] = None,
        rpc_timeout: Optional[float] = None,
    ) -> None:
        if shard_addresses is not None:
            addresses = [parse_address(a) for a in shard_addresses]
            if not addresses:
                raise ValueError("shard_addresses must be non-empty")
            transport = "socket"
            shards = len(addresses)
        else:
            addresses = None
        if transport not in SHARD_TRANSPORTS:
            raise ValueError(
                f"unknown shard transport {transport!r}; "
                f"expected one of {SHARD_TRANSPORTS}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self._registry = registry if registry is not None else NULL_REGISTRY
        self._init_runtime(
            transport=transport,
            addresses=addresses,
            auto_restore=auto_restore,
            health_interval=health_interval,
            rpc_timeout=rpc_timeout,
        )
        # Import here: backends imports this module lazily (make_backend)
        # and this module needs backends' normaliser -- a top-level import
        # each way would be a cycle.
        from .backends import normalise_correlations

        users = normalise_correlations(correlations)
        partitions: List[Dict[Hashable, object]] = [{} for _ in range(shards)]
        self._user_shard: Dict[Hashable, int] = {}
        for user, value in users.items():
            pair = normalise_pair(value)
            index = shard_of_digest(correlation_digest(*pair), shards)
            partitions[index][user] = pair
            self._user_shard[user] = index
        self._epsilons: List[float] = []
        maxsize = cache.maxsize if cache is not None else None
        self._specs = [(p, None, maxsize) for p in partitions]
        self._start_workers(self._specs)

    def _init_runtime(
        self,
        *,
        transport: str,
        addresses,
        auto_restore: bool,
        health_interval: Optional[float],
        rpc_timeout: Optional[float],
    ) -> None:
        """Transport/recovery state shared by ``__init__`` and
        :meth:`restore`."""
        self._transport_kind = transport
        self._addresses: Optional[List[Tuple[str, int]]] = addresses
        self._auto_restore = auto_restore
        self._health_interval = health_interval
        self._rpc_timeout = rpc_timeout
        self._transports: Optional[List[Optional[ShardTransport]]] = None
        self._procs: Optional[list] = None
        self._journal: list = []
        self._checkpoint_dir: Optional[str] = None
        self._recovering = False
        self._last_health = time.monotonic()

    # -- worker lifecycle ----------------------------------------------
    def _launch(self, index: int, spec):
        """Start (or dial) one worker and ship its spec; returns
        ``(transport, process-or-None)``.  The engine-ready handshake is
        *not* consumed here -- callers gather it so startup stays
        parallel across shards."""
        if self._transport_kind == "pipe":
            ctx = _mp_context()
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker, args=(child, *spec), daemon=True
            )
            proc.start()
            child.close()
            return PipeTransport(parent), proc
        if self._addresses is not None:
            host, port = self._addresses[index]
            transport = self._dial(host, port)
            transport.send(spec)
            return transport, None
        # Locally-spawned socket worker: the child binds loopback:0,
        # reports its chosen port over a one-shot control pipe, then
        # accepts framed connections like a standalone shard worker.
        from ..net.worker import spawned_socket_worker

        ctx = _mp_context()
        ctrl_parent, ctrl_child = ctx.Pipe()
        proc = ctx.Process(
            target=spawned_socket_worker, args=(ctrl_child,), daemon=True
        )
        proc.start()
        ctrl_child.close()
        try:
            if not ctrl_parent.poll(30):
                raise TransportClosed(
                    "socket shard worker did not report a port within 30s"
                )
            port = ctrl_parent.recv()
        except (EOFError, OSError) as error:
            proc.terminate()
            raise TransportClosed(
                f"socket shard worker died before reporting a port: {error}"
            ) from error
        finally:
            ctrl_parent.close()
        try:
            transport = SocketTransport.connect("127.0.0.1", port)
            transport.send(spec)
        except BaseException:
            proc.terminate()
            raise
        return transport, proc

    def _dial(self, host: str, port: int) -> SocketTransport:
        """Connect to an externally-managed worker, retrying briefly --
        a restarted worker needs a moment to rebind its port."""
        attempts = 10
        for attempt in range(attempts):
            try:
                return SocketTransport.connect(host, port, timeout=10.0)
            except TransportClosed:
                if attempt == attempts - 1:
                    raise
                time.sleep(min(0.2 * (attempt + 1), 1.0))
        raise AssertionError("unreachable")  # pragma: no cover

    def _start_workers(self, specs) -> None:
        transports: List[Optional[ShardTransport]] = []
        procs = []
        try:
            for index, spec in enumerate(specs):
                transport, proc = self._launch(index, spec)
                transports.append(transport)
                procs.append(proc)
        except BaseException:
            for transport in transports:
                transport.close()
            for proc in procs:
                if proc is not None:
                    proc.terminate()
            raise
        self._transports = transports
        self._procs = procs
        try:
            # Startup handshake: every worker reports its engine built
            # (or relays the real setup exception -- a missing shard
            # checkpoint surfaces as its FileNotFoundError, not as an
            # opaque dead pipe on the first command).
            self._gather([(i, None, None) for i in range(len(transports))])
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Shut the worker processes down (idempotent).  A closed backend
        answers no further queries; close it only when the session is
        done with it."""
        if self._transports is None:
            return
        live = [t for t in self._transports if t is not None]
        for transport in live:
            try:
                transport.send(("close", None))
            except (TransportClosed, OSError):
                pass
        for transport in live:
            try:
                transport.recv(timeout=5)
            except (TransportClosed, TransportTimeout, OSError):
                pass
            transport.close()
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
        self._transports = None
        self._procs = None

    def __enter__(self) -> "ShardedFleetBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- recovery -------------------------------------------------------
    def _restore_spec(self, index: int):
        """What to rebuild shard ``index``'s engine from: the last
        checkpoint when one exists (the journal covers everything
        since), else the shard's original construction spec (the
        journal covers the backend's whole lifetime)."""
        correlations, restore_dir, maxsize = self._specs[index]
        if self._checkpoint_dir is not None:
            shard_dir = str(Path(self._checkpoint_dir) / f"shard_{index}")
            return (None, shard_dir, maxsize)
        return (correlations, restore_dir, maxsize)

    def _teardown_worker(self, index: int) -> None:
        transport = self._transports[index]
        if transport is not None:
            transport.close()
        self._transports[index] = None
        proc = self._procs[index]
        if proc is not None:
            proc.terminate()
            proc.join(timeout=5)
            self._procs[index] = None

    def _restore_shard(self, index: int, cause: BaseException) -> None:
        """Bring a dead/unresponsive shard back bit-identically:
        respawn or redial it, rebuild its engine from the last
        checkpoint (or original partition), replay the op journal.
        Failure at any point -- or ``auto_restore=False`` -- falls back
        to :meth:`_fail` (close the backend, raise)."""
        if (
            not self._auto_restore
            or self._recovering
            or self._transports is None
        ):
            self._fail(index, cause)
        self._recovering = True
        try:
            self._registry.counter("shard.restores", shard=index).inc()
            with self._registry.span("shard.restore.seconds"):
                self._teardown_worker(index)
                transport, proc = self._launch(
                    index, self._restore_spec(index)
                )
                self._transports[index] = transport
                self._procs[index] = proc
                status, payload = transport.recv(timeout=self._rpc_timeout)
                if status == "error":
                    raise payload
                for entry in self._journal:
                    if entry[0] == "window":
                        _, epsilons, split = entry
                        transport.send(
                            ("add_window", (epsilons, split[index]))
                        )
                    else:
                        transport.send(("rollback", entry[1]))
                    status, payload = transport.recv(
                        timeout=self._rpc_timeout
                    )
                    if status == "error":
                        # Journal entries all succeeded once; a replay
                        # error means the restore source is unusable.
                        raise payload
        except BaseException as error:  # noqa: BLE001 -- downgraded to fail
            self._fail(index, error)
        finally:
            self._recovering = False

    def _journal_window(self, epsilons, split) -> None:
        self._journal.append(("window", list(epsilons), split))

    def _journal_rollback(self, n: int) -> None:
        """Fold a rollback into the journal.  Trailing window entries
        are truncated outright -- the session's probe-and-rollback alpha
        bisection would otherwise grow the journal by two entries per
        probe -- and only underflow past the journal's start survives as
        a leading ``("rollback", k)`` against the checkpoint."""
        remaining = n
        while remaining and self._journal and self._journal[-1][0] == "window":
            _, epsilons, split = self._journal[-1]
            steps = len(epsilons)
            if steps <= remaining:
                self._journal.pop()
                remaining -= steps
            else:
                keep = steps - remaining
                self._journal[-1] = (
                    "window",
                    epsilons[:keep],
                    [shard_steps[:keep] for shard_steps in split],
                )
                remaining = 0
        if remaining:
            if self._journal and self._journal[-1][0] == "rollback":
                self._journal[-1] = (
                    "rollback",
                    self._journal[-1][1] + remaining,
                )
            else:
                self._journal.append(("rollback", remaining))

    def check_health(
        self,
        *,
        timeout: float = 5.0,
        restore: Optional[bool] = None,
    ) -> List[dict]:
        """Ping every shard; returns one report dict per shard.

        A shard that cannot answer within ``timeout`` seconds is treated
        as dead: restored in place (default, per ``auto_restore``) or --
        with ``restore=False`` -- reported ``alive: False`` with its
        transport closed, so the next operation triggers the normal
        restore-or-fail path instead of misreading a late reply.
        """
        self._require_open()
        if restore is None:
            restore = self._auto_restore
        self._registry.counter("shard.health.sweeps").inc()
        reports = []
        for index in range(len(self._transports)):
            t0 = time.perf_counter()
            try:
                transport = self._transports[index]
                transport.send(("ping", None))
                status, payload = transport.recv(timeout=timeout)
                if status == "error":  # pragma: no cover - protocol bug
                    raise payload
                reports.append(
                    {
                        "shard": index,
                        "alive": True,
                        "restored": False,
                        "horizon": payload["horizon"],
                        "latency_ms": (time.perf_counter() - t0) * 1e3,
                    }
                )
            except (TransportClosed, TransportTimeout) as error:
                if restore:
                    self._restore_shard(index, error)
                    reports.append(
                        {
                            "shard": index,
                            "alive": True,
                            "restored": True,
                            "horizon": len(self._epsilons),
                            "latency_ms": None,
                        }
                    )
                else:
                    self._transports[index].close()
                    reports.append(
                        {
                            "shard": index,
                            "alive": False,
                            "restored": False,
                            "horizon": None,
                            "latency_ms": None,
                        }
                    )
        return reports

    def _maybe_health(self) -> None:
        if self._health_interval is None or self._recovering:
            return
        now = time.monotonic()
        if now - self._last_health >= self._health_interval:
            self._last_health = now
            self.check_health()

    # -- scatter/gather plumbing ---------------------------------------
    def _require_open(self) -> None:
        if self._transports is None:
            raise RuntimeError("ShardedFleetBackend is closed")

    def _fail(self, index: int, error: BaseException):
        """A shard is gone for good (worker death with
        ``auto_restore=False``, or a failed restore).  Its cohorts'
        accounting state cannot be recovered, so the backend as a whole
        can no longer answer honestly -- and surviving shards may hold
        unread replies that would desynchronise the rpc protocol.  Tear
        everything down and surface one clear error; every subsequent
        call raises the explicit "closed" RuntimeError."""
        self.close()
        raise RuntimeError(
            f"shard {index} terminated unexpectedly; backend closed"
        ) from error

    def _send(self, index: int, op, args=None) -> None:
        try:
            self._transports[index].send((op, args))
        except (TransportClosed, OSError) as error:
            self._restore_shard(index, error)
            try:
                self._transports[index].send((op, args))
            except (TransportClosed, OSError) as retry_error:
                self._fail(index, retry_error)

    def _recv(self, index: int, op=None, args=None):
        """Collect one reply from shard ``index``.  On transport failure
        or timeout the shard is restored (journal replay) and the
        in-flight ``(op, args)`` -- lost with the old worker -- is
        re-issued exactly once."""
        try:
            return self._transports[index].recv(timeout=self._rpc_timeout)
        except (TransportClosed, TransportTimeout, OSError) as error:
            self._restore_shard(index, error)
            try:
                self._transports[index].send((op, args))
                return self._transports[index].recv(
                    timeout=self._rpc_timeout
                )
            except (TransportClosed, TransportTimeout, OSError) as retry:
                self._fail(index, retry)

    def _gather(self, requests) -> list:
        """Receive one reply per ``(index, op, args)`` request,
        re-raising the first *error payload* only after every reply has
        been collected (no shard is left with an unread response in its
        channel).  A shard dying mid-gather is restored and its request
        re-issued; an unrestorable shard closes the whole backend."""
        outcomes = [self._recv(i, op, args) for i, op, args in requests]
        for status, payload in outcomes:
            if status == "error":
                raise payload
        return [payload for _, payload in outcomes]

    def _timed_gather(self, requests, *, t0: float) -> list:
        """Collect one reply per ``(index, op, args)`` request in
        completion order, returning the raw ``(status, payload)``
        outcomes in *request* order.

        Unlike :meth:`_gather`'s fixed-order blocking reads, replies are
        polled for and read as they arrive, and each shard's
        ``shard.rpc.seconds`` label is recorded at the moment *its*
        reply turned up -- a fixed-order gather folds every earlier
        shard's wait into later shards' labels, so the slowest shard
        used to dominate all of them.  Restore/reissue and rpc-deadline
        semantics are unchanged: a shard that stays silent past
        ``rpc_timeout`` is read with the ordinary blocking ``_recv``,
        which times out, restores and re-issues exactly as before.
        """
        registry = self._registry
        pending = dict(enumerate(requests))
        outcomes: list = [None] * len(requests)

        def collect(slot: int) -> None:
            index, op, args = pending.pop(slot)
            outcomes[slot] = self._recv(index, op, args)
            if registry.enabled:
                registry.histogram(
                    "shard.rpc.seconds", shard=index
                ).observe(time.perf_counter() - t0)

        start = time.monotonic()
        while pending:
            progressed = False
            for slot in sorted(pending):
                if self._transports[pending[slot][0]].poll(0.0):
                    collect(slot)
                    progressed = True
            if progressed or not pending:
                continue
            oldest = min(pending)
            if (
                self._rpc_timeout is not None
                and time.monotonic() - start > self._rpc_timeout
            ):
                # Nothing arrived within the rpc deadline: fall back to
                # the blocking read so the transport timeout (and the
                # restore-and-reissue it triggers) fires normally.
                collect(oldest)
            elif self._transports[pending[oldest][0]].poll(0.005):
                collect(oldest)
        return outcomes

    def _broadcast(self, op, args=None) -> list:
        self._require_open()
        self._maybe_health()
        for index in range(len(self._transports)):
            self._send(index, op, args)
        return self._gather(
            [(i, op, args) for i in range(len(self._transports))]
        )

    def _call(self, index: int, op, args=None):
        self._require_open()
        self._send(index, op, args)
        return self._gather([(index, op, args)])[0]

    # -- stream interface ----------------------------------------------
    def add_window(self, window: ReleaseWindow) -> WindowResult:
        """Scatter a window to every shard and merge the per-step worst
        series by elementwise max.

        Validation (budgets, override users, override budgets) happens
        here, before any shard is touched, in exactly the order the
        single-process engine validates -- identical errors, and a
        failing window leaves every shard unchanged.
        """
        with self._registry.span(
            "backend.add_window.seconds", backend=self.name
        ):
            result = self._add_window(window)
        self._registry.counter("backend.steps", backend=self.name).inc(
            len(result.max_tpls)
        )
        return result

    def _add_window(self, window: ReleaseWindow) -> WindowResult:
        from .backends import _resolved_steps

        self._require_open()
        self._maybe_health()
        steps = _resolved_steps(window)
        epsilons = [validate_epsilon(eps) for eps, _ in steps]
        per_step = [dict(ovr) if ovr else {} for _, ovr in steps]
        n_shards = len(self._transports)
        split: List[List[Dict[Hashable, float]]] = [
            [{} for _ in steps] for _ in range(n_shards)
        ]
        for i, step_overrides in enumerate(per_step):
            for user, eps_u in step_overrides.items():
                owner = self._user_shard.get(user)
                if owner is None:
                    raise KeyError(f"override for unknown user {user!r}")
                validate_epsilon(eps_u, name="override epsilon")
                split[owner][i][user] = eps_u
        registry = self._registry
        t0 = time.perf_counter() if registry.enabled else 0.0
        for index in range(n_shards):
            self._send(index, "add_window", (epsilons, split[index]))
        if registry.enabled:
            registry.histogram("shard.scatter.seconds").observe(
                time.perf_counter() - t0
            )
        outcomes = self._timed_gather(
            [
                (i, "add_window", (epsilons, split[i]))
                for i in range(n_shards)
            ],
            t0=t0,
        )
        errors = [payload for status, payload in outcomes if status == "error"]
        if errors:
            # Coordinator-side validation makes this unreachable for bad
            # input; it guards against shard-side faults such as a
            # SolverError mid-window.  The failing engine already unwound
            # itself (FleetAccountant truncates a half-applied window),
            # so rewinding the shards that applied restores the global
            # pre-window state exactly.  (These unwind rollbacks are
            # deliberately not journalled -- the window itself never
            # was.)
            for index, (status, _) in enumerate(outcomes):
                if status == "ok":
                    self._call(index, "rollback", len(epsilons))
            raise errors[0]
        self._epsilons.extend(epsilons)
        self._journal_window(epsilons, split)
        with registry.span("shard.merge.seconds"):
            merged = np.maximum.reduce([payload for _, payload in outcomes])
        return WindowResult(merged)

    def add_release(
        self,
        epsilon: float,
        overrides: Optional[Mapping[Hashable, float]] = None,
    ) -> float:
        """One-element-window compatibility wrapper over
        :meth:`add_window`."""
        return self.add_window(
            ReleaseWindow.single(epsilon=epsilon, overrides=overrides)
        ).final_max_tpl

    def rollback_last(self) -> None:
        if not self._epsilons:
            raise ValueError("no releases to roll back")
        self.rollback(1)

    def rollback(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if n > len(self._epsilons):
            raise ValueError(
                f"cannot roll back {n} releases; only "
                f"{len(self._epsilons)} recorded"
            )
        if n == 0:
            return
        self._broadcast("rollback", n)
        del self._epsilons[len(self._epsilons) - n :]
        self._journal_rollback(n)

    def probe_scales(
        self,
        epsilon: float,
        overrides: Optional[Mapping[Hashable, float]] = None,
        scales: Iterable[float] = (),
    ) -> np.ndarray:
        """Scatter a read-only multi-scale probe to every shard and merge
        the per-scale worsts by elementwise max (each shard's answer
        already carries the serial probe's ``0.0`` floor, so the merge is
        the exact cross-shard maximum).

        Validation mirrors :meth:`_add_window` -- same checks in the
        same order, before any shard is touched.  The op mutates
        nothing, so it is *not* journalled: a worker that dies mid-probe
        is restored from checkpoint + journal and the re-issued probe
        (via :meth:`_recv`'s generic restore-and-reissue) answers
        bit-identically.
        """
        with self._registry.span(
            "backend.probe_scales.seconds", backend=self.name
        ):
            self._require_open()
            self._maybe_health()
            epsilon = validate_epsilon(epsilon)
            per = dict(overrides) if overrides else {}
            n_shards = len(self._transports)
            split: List[Dict[Hashable, float]] = [{} for _ in range(n_shards)]
            for user, eps_u in per.items():
                owner = self._user_shard.get(user)
                if owner is None:
                    raise KeyError(f"override for unknown user {user!r}")
                validate_epsilon(eps_u, name="override epsilon")
                split[owner][user] = eps_u
            scales = [float(s) for s in scales]
            for index in range(n_shards):
                self._send(index, "probe_scales", (epsilon, split[index], scales))
            results = self._gather(
                [
                    (i, "probe_scales", (epsilon, split[i], scales))
                    for i in range(n_shards)
                ]
            )
            return np.maximum.reduce(results)

    # -- queries --------------------------------------------------------
    def max_tpl(self) -> float:
        """Worst TPL over all users and time points: the max over
        per-shard maxima (exact -- ``max`` is associative in floats)."""
        return max(self._broadcast("max_tpl"))

    def profile(self, user: Optional[Hashable] = None) -> LeakageProfile:
        if user is None:
            if len(self._user_shard) != 1:
                raise ValueError("multiple users tracked; specify which one")
            user = next(iter(self._user_shard))
        owner = self._user_shard.get(user)
        if owner is None:
            raise KeyError(f"unknown user {user!r}")
        return self._call(owner, "profile", user)

    def user_epsilons(self, user: Hashable) -> np.ndarray:
        owner = self._user_shard.get(user)
        if owner is None:
            raise KeyError(f"unknown user {user!r}")
        return self._call(owner, "user_epsilons", user)

    @property
    def horizon(self) -> int:
        return len(self._epsilons)

    @property
    def epsilons(self) -> np.ndarray:
        return np.asarray(self._epsilons, dtype=float)

    @property
    def users(self) -> Iterable[Hashable]:
        return self._user_shard.keys()

    @property
    def n_users(self) -> int:
        return len(self._user_shard)

    @property
    def n_shards(self) -> int:
        self._require_open()
        return len(self._transports)

    @property
    def transport(self) -> str:
        """Which transport drives the workers (observability)."""
        return self._transport_kind

    def shard_of(self, user: Hashable) -> int:
        """Which shard owns ``user``'s cohort (observability)."""
        owner = self._user_shard.get(user)
        if owner is None:
            raise KeyError(f"unknown user {user!r}")
        return owner

    def shard_sizes(self) -> List[int]:
        """Users per shard -- the balance operators watch when choosing
        a shard count for a given cohort population."""
        self._require_open()
        sizes = [0] * len(self._transports)
        for index in self._user_shard.values():
            sizes[index] += 1
        return sizes

    # -- checkpointing --------------------------------------------------
    def save(self, directory) -> Path:
        """Write one fleet checkpoint per shard plus the shard manifest.

        Shards persist in parallel (scatter the ``save``, then gather),
        each an ordinary ``.npz`` + manifest fleet checkpoint under
        ``shard_<i>/``.  A successful save becomes the new restore
        point: the coordinator's op journal is truncated to it.
        """
        self._require_open()
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        for index in range(len(self._transports)):
            self._send(index, "save", str(path / f"shard_{index}"))
        self._gather(
            [
                (i, "save", str(path / f"shard_{i}"))
                for i in range(len(self._transports))
            ]
        )
        manifest = {
            "format": _SHARD_FORMAT_VERSION,
            "kind": SHARD_CHECKPOINT_KIND,
            "shards": len(self._transports),
            "horizon": self.horizon,
            "n_users": len(self._user_shard),
        }
        (path / SHARD_MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
        self._checkpoint_dir = str(path)
        self._journal.clear()
        return path

    @classmethod
    def restore(
        cls,
        directory,
        correlations=None,
        cache: Optional[SolutionCache] = None,
        *,
        shards: Optional[int] = None,
        registry=None,
        transport: str = "pipe",
        shard_addresses=None,
        auto_restore: bool = True,
        health_interval: Optional[float] = None,
        rpc_timeout: Optional[float] = None,
    ) -> "ShardedFleetBackend":
        """Rebuild a backend from :meth:`save` output.

        Correlation models live in the per-shard ``.npz`` files, so
        ``correlations`` is accepted only for signature symmetry;
        ``cache`` contributes its ``maxsize`` to the workers' private
        caches (as in the constructor).  The checkpoint dictates the
        shard count; passing an explicit conflicting ``shards`` is an
        error (cohort -> shard assignment is part of the persisted
        state).  Transport/recovery options mirror the constructor.
        """
        directory = Path(directory)
        manifest = json.loads(
            (directory / SHARD_MANIFEST_NAME).read_text(encoding="utf-8")
        )
        if manifest.get("kind") != SHARD_CHECKPOINT_KIND:
            raise ValueError(f"{directory} is not a sharded fleet checkpoint")
        if manifest.get("format") != _SHARD_FORMAT_VERSION:
            raise ValueError(
                f"unsupported sharded checkpoint format "
                f"{manifest.get('format')!r}"
            )
        saved_shards = int(manifest["shards"])
        if shards is not None and shards != saved_shards:
            raise ValueError(
                f"checkpoint in {directory} was written with "
                f"{saved_shards} shards but the config requests {shards}; "
                "re-sharding a checkpoint is not supported"
            )
        if shard_addresses is not None:
            addresses = [parse_address(a) for a in shard_addresses]
            if len(addresses) != saved_shards:
                raise ValueError(
                    f"checkpoint in {directory} holds {saved_shards} "
                    f"shards but {len(addresses)} shard addresses given"
                )
            transport = "socket"
        else:
            addresses = None
        if transport not in SHARD_TRANSPORTS:
            raise ValueError(
                f"unknown shard transport {transport!r}; "
                f"expected one of {SHARD_TRANSPORTS}"
            )
        self = cls.__new__(cls)
        self._registry = registry if registry is not None else NULL_REGISTRY
        self._init_runtime(
            transport=transport,
            addresses=addresses,
            auto_restore=auto_restore,
            health_interval=health_interval,
            rpc_timeout=rpc_timeout,
        )
        maxsize = cache.maxsize if cache is not None else None
        self._specs = [
            (None, str(directory / f"shard_{i}"), maxsize)
            for i in range(saved_shards)
        ]
        self._checkpoint_dir = str(directory)
        self._start_workers(self._specs)
        self._user_shard = {}
        descriptions = self._broadcast("describe")
        for index, description in enumerate(descriptions):
            for user in description["users"]:
                self._user_shard[user] = index
        # Every shard records the full default-budget series (windows are
        # broadcast), so all copies must agree with each other and with
        # the manifest -- a partially written checkpoint (one shard's
        # save failed) must refuse to restore rather than merge phantom
        # releases into the privacy numbers.
        self._epsilons = [float(e) for e in descriptions[0]["epsilons"]]
        for index, description in enumerate(descriptions[1:], start=1):
            if [float(e) for e in description["epsilons"]] != self._epsilons:
                self.close()
                raise ValueError(
                    f"corrupt sharded checkpoint: shard {index}'s budget "
                    f"series disagrees with shard 0's (horizons "
                    f"{len(description['epsilons'])} vs "
                    f"{len(self._epsilons)}); the shards were not saved "
                    "from the same state"
                )
        if len(self._epsilons) != int(manifest["horizon"]):
            self.close()
            raise ValueError(
                f"corrupt sharded checkpoint: manifest horizon "
                f"{manifest['horizon']} != shard horizon {len(self._epsilons)}"
            )
        return self

    def __repr__(self) -> str:
        shards = (
            "closed" if self._transports is None else len(self._transports)
        )
        return (
            f"ShardedFleetBackend(users={len(self._user_shard)}, "
            f"shards={shards}, transport={self._transport_kind!r}, "
            f"horizon={self.horizon})"
        )
