"""Bounded asynchronous ingestion with backpressure.

The accounting recursions are strictly sequential -- FPL of every past
time point depends on every later release -- so a release service cannot
simply fan snapshots out to worker threads.  What it *can* do is decouple
producers (request handlers, shard feeds) from the single accounting
consumer: :class:`BoundedIngestQueue` is an ``asyncio`` FIFO with a hard
bound.  ``await submit(...)`` parks the producer while the queue is full
(backpressure) and resolves with that item's result once the drain task
has processed it, in submission order.

This is deliberately the seam for the ROADMAP's sharding work: a
coordinator that partitions cohorts across processes replaces the inline
``process`` callable with a scatter/gather step, and nothing upstream of
the queue changes.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, Callable, Optional

__all__ = ["BoundedIngestQueue"]


class BoundedIngestQueue:
    """FIFO queue + single drain task in front of a sequential consumer.

    Parameters
    ----------
    process:
        Synchronous callable applied to each submitted item by the drain
        task.  Exceptions it raises are delivered to the submitting
        awaiter, not swallowed.
    maxsize:
        Queue bound; ``submit`` blocks (asynchronously) while the queue
        holds this many unprocessed items.

    Notes
    -----
    The queue binds to the running event loop on first ``submit`` and must
    not be shared across loops.  ``close`` drains outstanding items before
    stopping, so no submitted work is lost on shutdown.
    """

    def __init__(
        self, process: Callable[[Any], Any], maxsize: int = 64
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self._process = process
        self._maxsize = maxsize
        self._queue: Optional[asyncio.Queue] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._in_flight = 0  # submitters between entry and result delivery
        self.submitted = 0
        self.processed = 0
        self.high_watermark = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def depth(self) -> int:
        """Items currently queued (unprocessed)."""
        return 0 if self._queue is None else self._queue.qsize()

    async def submit(self, item: Any) -> Any:
        """Enqueue ``item`` and wait for its result.

        Applies backpressure: when the queue is full this parks until the
        drain task frees a slot.  Results (or exceptions) are delivered
        per item, in FIFO order.
        """
        self._ensure_started()
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._in_flight += 1
        try:
            await self._queue.put((item, future))
            self.submitted += 1
            self.high_watermark = max(
                self.high_watermark, self._queue.qsize()
            )
            return await future
        finally:
            self._in_flight -= 1

    async def close(self) -> None:
        """Drain every outstanding item, then stop the drain task."""
        if self._queue is None:
            return
        # join() alone can return while a producer is still parked inside
        # put() (the drain's final get() frees the slot before the parked
        # putter runs), so keep draining until no submitter is in flight
        # -- otherwise cancelling the drain task would strand that
        # producer on a future nobody will ever resolve.
        while self._in_flight or not self._queue.empty():
            await self._queue.join()
            await asyncio.sleep(0)
        assert self._drain_task is not None
        self._drain_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._drain_task
        self._queue = None
        self._drain_task = None

    def _ensure_started(self) -> None:
        if self._queue is None:
            self._queue = asyncio.Queue(maxsize=self._maxsize)
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain()
            )

    async def _drain(self) -> None:
        assert self._queue is not None
        while True:
            item, future = await self._queue.get()
            try:
                result = self._process(item)
            except BaseException as error:  # noqa: BLE001 -- relayed, not hidden
                if not future.cancelled():
                    future.set_exception(error)
            else:
                if not future.cancelled():
                    future.set_result(result)
            finally:
                self.processed += 1
                self._queue.task_done()
