"""Bounded asynchronous ingestion with backpressure and window coalescing.

The accounting recursions are strictly sequential -- FPL of every past
time point depends on every later release -- so a release service cannot
simply fan snapshots out to worker threads.  What it *can* do is decouple
producers (request handlers, shard feeds) from the single accounting
consumer: :class:`BoundedIngestQueue` is an ``asyncio`` FIFO with a hard
bound.  ``await submit(...)`` parks the producer while the queue is full
(backpressure) and resolves with that item's result once the drain task
has processed it, in submission order.

When a ``process_batch`` callable is configured, the drain task coalesces
up to ``batch_size`` queued items per round and hands them over together
-- the seam the windowed ingestion API
(:meth:`~repro.service.session.ReleaseSession.ingest_window`) plugs into:
whenever producers outpace the accounting consumer, the backlog is
drained as one :class:`~repro.service.window.ReleaseWindow` instead of
one backend round-trip per item.

This is deliberately the seam the sharding work plugs into: with
``SessionConfig(shards=N)`` the windows drained here enter a
:class:`~repro.service.sharding.ShardedFleetBackend`, whose coordinator
scatters each one across worker processes and gathers the per-shard
worst-TPL series -- nothing upstream of the queue changed.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Any, Callable, List, Optional

from ..obs.metrics import NULL_REGISTRY

__all__ = ["BoundedIngestQueue", "QueueClosed"]


class QueueClosed(RuntimeError):
    """Raised by :meth:`BoundedIngestQueue.submit` calls that race an
    in-progress :meth:`BoundedIngestQueue.close`.

    Without this, a submission arriving while ``close()`` is tearing the
    drain task down could enqueue an item nobody will ever process and
    park its producer on a future nobody will ever resolve.
    """


class BoundedIngestQueue:
    """FIFO queue + single drain task in front of a sequential consumer.

    Parameters
    ----------
    process:
        Synchronous callable applied to each submitted item by the drain
        task.  Exceptions it raises are delivered to the submitting
        awaiter, not swallowed.
    maxsize:
        Queue bound; ``submit`` blocks (asynchronously) while the queue
        holds this many unprocessed items.
    batch_size:
        Maximum number of queued items the drain task coalesces per
        round when ``process_batch`` is given.
    process_batch:
        Optional synchronous callable receiving a *list* of items and
        returning one result per item, in order.  When set it replaces
        ``process`` for every drained round (including single-item ones)
        so every item takes the same code path.  It must be atomic on
        failure -- raise before mutating any state, as the session's
        window validation does -- because when it raises, the round is
        retried item by item through ``process`` so that one poisoned
        submission fails alone instead of failing its whole batch.

    Notes
    -----
    The queue binds to the running event loop on first ``submit`` and
    must not be shared across loops: a ``submit`` from any other loop
    raises ``RuntimeError`` immediately (the queue and its drain task
    live on the owning loop, so a foreign-loop future would hang or
    crash with ``attached to a different loop`` deep inside asyncio).
    After ``close`` the binding is released and the next ``submit``
    re-binds to its loop.

    Entries whose submitter has gone away (the awaiting task was
    cancelled) are *skipped*, not processed: charging the consumer --
    for a release session, spending privacy budget -- on behalf of an
    abandoned request would mutate state nobody observes, and any
    exception it raised would vanish.  Skipped entries are excluded from
    coalesced batches and counted in :meth:`stats` as ``cancelled``.

    ``close`` drains outstanding items before stopping, so no submitted
    work is lost on shutdown; submissions that arrive *while* ``close``
    is in progress raise :class:`QueueClosed` instead of being stranded.
    ``high_watermark`` records the deepest backlog observed and
    ``batch_high_watermark`` the largest coalesced batch -- the two
    numbers operators use to size ``maxsize`` and the session's
    ``window_size``.
    """

    def __init__(
        self,
        process: Callable[[Any], Any],
        maxsize: int = 64,
        *,
        batch_size: int = 1,
        process_batch: Optional[Callable[[List[Any]], List[Any]]] = None,
        registry=None,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._process = process
        self._process_batch = process_batch
        self._registry = registry if registry is not None else NULL_REGISTRY
        self._maxsize = maxsize
        self._batch_size = batch_size
        self._queue: Optional[asyncio.Queue] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._in_flight = 0  # submitters between entry and result delivery
        self._closing = False
        self.submitted = 0
        self.processed = 0
        self.cancelled = 0
        self.high_watermark = 0
        self.batch_high_watermark = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def batch_size(self) -> int:
        return self._batch_size

    @property
    def depth(self) -> int:
        """Items currently queued (unprocessed)."""
        return 0 if self._queue is None else self._queue.qsize()

    def stats(self) -> dict:
        """Operational counters, for session summaries and dashboards.
        ``processed`` counts entries actually handed to the consumer;
        ``cancelled`` counts entries skipped because their submitter
        abandoned them first (``submitted == processed + cancelled``
        once fully drained)."""
        return {
            "maxsize": self._maxsize,
            "batch_size": self._batch_size,
            "depth": self.depth,
            "submitted": self.submitted,
            "processed": self.processed,
            "cancelled": self.cancelled,
            "high_watermark": self.high_watermark,
            "batch_high_watermark": self.batch_high_watermark,
        }

    async def submit(self, item: Any) -> Any:
        """Enqueue ``item`` and wait for its result.

        Applies backpressure: when the queue is full this parks until the
        drain task frees a slot.  Results (or exceptions) are delivered
        per item, in FIFO order.  Raises :class:`QueueClosed` when called
        while :meth:`close` is in progress.
        """
        if self._closing:
            raise QueueClosed("queue is closing; submission rejected")
        loop = asyncio.get_running_loop()
        if self._queue is not None and loop is not self._loop:
            raise RuntimeError(
                "BoundedIngestQueue is bound to a different event loop; "
                "it binds to the loop of its first submit -- create one "
                "queue per loop (or close() it before reusing elsewhere)"
            )
        self._ensure_started()
        assert self._queue is not None
        future: asyncio.Future = loop.create_future()
        self._in_flight += 1
        registry = self._registry
        if registry.enabled and self._queue.full():
            registry.counter("queue.backpressure_stalls").inc()
        try:
            t0 = time.perf_counter() if registry.enabled else 0.0
            await self._queue.put((item, future, t0))
            self.submitted += 1
            self.high_watermark = max(
                self.high_watermark, self._queue.qsize()
            )
            if registry.enabled:
                registry.timeseries("queue.depth").record(self._queue.qsize())
            return await future
        finally:
            self._in_flight -= 1

    async def close(self) -> None:
        """Drain every outstanding item, then stop the drain task.

        Idempotent; a fully closed queue restarts on the next
        :meth:`submit`.  Producers already parked when ``close`` begins
        are drained normally; *new* submissions racing the close raise
        :class:`QueueClosed` rather than hanging on a dying queue.
        """
        if self._queue is None:
            return
        self._closing = True
        try:
            # join() alone can return while a producer is still parked
            # inside put() (the drain's final get() frees the slot before
            # the parked putter runs), so keep draining until no submitter
            # is in flight -- otherwise cancelling the drain task would
            # strand that producer on a future nobody will ever resolve.
            while self._in_flight or not self._queue.empty():
                await self._queue.join()
                await asyncio.sleep(0)
            assert self._drain_task is not None
            self._drain_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._drain_task
            self._queue = None
            self._drain_task = None
            self._loop = None
        finally:
            self._closing = False

    def _ensure_started(self) -> None:
        if self._queue is None:
            self._loop = asyncio.get_running_loop()
            self._queue = asyncio.Queue(maxsize=self._maxsize)
            self._drain_task = self._loop.create_task(self._drain())

    def _next_batch(self, first) -> list:
        """Coalesce up to ``batch_size`` queued entries, FIFO."""
        assert self._queue is not None
        batch = [first]
        while len(batch) < self._batch_size:
            try:
                batch.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                break
        self.batch_high_watermark = max(
            self.batch_high_watermark, len(batch)
        )
        return batch

    def _finish(self, count: int) -> None:
        assert self._queue is not None
        for _ in range(count):
            self.processed += 1
            self._queue.task_done()

    def _skip_cancelled(self, count: int = 1) -> None:
        """Account for entries dropped because their submitter abandoned
        them: they are done as far as the queue is concerned, but the
        consumer never saw them."""
        assert self._queue is not None
        self._registry.counter("queue.cancelled").inc(count)
        for _ in range(count):
            self.cancelled += 1
            self._queue.task_done()

    def _observe_wait(self, entries) -> None:
        """Record how long each entry sat queued before reaching the
        consumer (only meaningful -- and only measured -- when a real
        registry stamped the submission)."""
        if not self._registry.enabled:
            return
        now = time.perf_counter()
        waits = self._registry.histogram("queue.wait.seconds")
        for entry in entries:
            waits.observe(now - entry[2])

    def _process_one(self, entry) -> None:
        """Process a single ``(item, future, t0)`` entry through
        ``process``, delivering its result or exception to just that
        submitter.

        An entry whose submitter already cancelled is skipped *before*
        the consumer runs: processing it anyway would mutate consumer
        state (spend privacy budget) for a request nobody is waiting on,
        and silently drop any exception it raised.
        """
        item, future, _ = entry
        if future.cancelled():
            self._skip_cancelled()
            return
        try:
            result = self._process(item)
        except BaseException as error:  # noqa: BLE001 -- relayed, not hidden
            if not future.cancelled():
                future.set_exception(error)
        else:
            if not future.cancelled():
                future.set_result(result)
        finally:
            self._finish(1)

    async def _drain(self) -> None:
        assert self._queue is not None
        while True:
            first = await self._queue.get()
            if self._process_batch is None:
                if not first[1].cancelled():
                    self._observe_wait([first])
                self._process_one(first)
                continue
            batch = self._next_batch(first)
            # Cancelled submitters never reach the consumer: their
            # entries are excluded from the coalesced window up front
            # (same skip as the per-item path).
            live = []
            for entry in batch:
                if entry[1].cancelled():
                    self._skip_cancelled()
                else:
                    live.append(entry)
            if not live:
                continue
            self._observe_wait(live)
            try:
                results = self._process_batch([entry[0] for entry in live])
                if len(results) != len(live):
                    raise RuntimeError(
                        f"process_batch returned {len(results)} results "
                        f"for {len(live)} items"
                    )
            except BaseException:  # noqa: BLE001 -- retried per item below
                # process_batch raises before mutating state (its
                # documented contract), so the whole round can be retried
                # item by item: healthy submissions succeed exactly as
                # they would have with batch_size=1, and only the
                # poisoned one receives its exception.
                for entry in live:
                    self._process_one(entry)
            else:
                for entry, result in zip(live, results):
                    if not entry[1].cancelled():
                        entry[1].set_result(result)
                self._finish(len(live))
