"""Bounded asynchronous ingestion with backpressure and window coalescing.

The accounting recursions are strictly sequential -- FPL of every past
time point depends on every later release -- so a release service cannot
simply fan snapshots out to worker threads.  What it *can* do is decouple
producers (request handlers, shard feeds) from the single accounting
consumer: :class:`BoundedIngestQueue` is an ``asyncio`` FIFO with a hard
bound.  ``await submit(...)`` parks the producer while the queue is full
(backpressure) and resolves with that item's result once the drain task
has processed it, in submission order.

When a ``process_batch`` callable is configured, the drain task coalesces
up to ``batch_size`` queued items per round and hands them over together
-- the seam the windowed ingestion API
(:meth:`~repro.service.session.ReleaseSession.ingest_window`) plugs into:
whenever producers outpace the accounting consumer, the backlog is
drained as one :class:`~repro.service.window.ReleaseWindow` instead of
one backend round-trip per item.

With ``offload=True`` the consumer callables run on a dedicated
single-thread executor (the queue's *lane*) instead of the event loop
thread.  Ordering is unchanged -- the drain task awaits each round
before starting the next, so the strictly-sequential recursion order is
preserved -- but the loop stays free for I/O while a round computes:
connection readers keep filling the queue, so the next round coalesces
a *real* backlog instead of whatever trickled in between loop stalls.
Result delivery (future resolution) always happens on the owning loop.

A ``commit`` callable turns the drain into a group-commit pipeline:
results of processed rounds are parked until ``commit()`` runs -- once
per burst, when the backlog empties (or ``maxsize`` results are parked)
-- and only then delivered.  The session uses this for
``wal_fsync="batch"``: many drained windows share one fsync, and no
submitter is acknowledged before its window is durable.

This is deliberately the seam the sharding work plugs into: with
``SessionConfig(shards=N)`` the windows drained here enter a
:class:`~repro.service.sharding.ShardedFleetBackend`, whose coordinator
scatters each one across worker processes and gathers the per-shard
worst-TPL series -- nothing upstream of the queue changed.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Tuple

from ..obs.metrics import NULL_REGISTRY

__all__ = ["BoundedIngestQueue", "QueueClosed"]


class QueueClosed(RuntimeError):
    """Raised by :meth:`BoundedIngestQueue.submit` calls that race an
    in-progress :meth:`BoundedIngestQueue.close`.

    Without this, a submission arriving while ``close()`` is tearing the
    drain task down could enqueue an item nobody will ever process and
    park its producer on a future nobody will ever resolve.
    """


class BoundedIngestQueue:
    """FIFO queue + single drain task in front of a sequential consumer.

    Parameters
    ----------
    process:
        Synchronous callable applied to each submitted item by the drain
        task.  Exceptions it raises are delivered to the submitting
        awaiter, not swallowed.
    maxsize:
        Queue bound; ``submit`` blocks (asynchronously) while the queue
        holds this many unprocessed items.
    batch_size:
        Maximum number of queued items the drain task coalesces per
        round when ``process_batch`` is given.
    process_batch:
        Optional synchronous callable receiving a *list* of items and
        returning one result per item, in order.  When set it replaces
        ``process`` for every drained round (including single-item ones)
        so every item takes the same code path.  It must be atomic on
        failure -- raise before mutating any state, as the session's
        window validation does -- because when it raises, the round is
        retried item by item through ``process`` so that one poisoned
        submission fails alone instead of failing its whole batch.
    offload:
        Run ``process`` / ``process_batch`` (and ``commit``) on a
        dedicated single-thread executor instead of the event loop
        thread.  One ordered lane per queue: rounds are still strictly
        sequential (the drain task awaits each before the next), only
        the *thread* changes, so results are bit-identical either way.
        The consumer callables must not touch the event loop.
    commit:
        Optional synchronous group-commit hook.  When set, results of a
        drained round are withheld until ``commit()`` has run; it runs
        once the backlog is empty (or ``maxsize`` results are parked),
        so a burst of rounds shares a single commit.  If ``commit``
        raises, every withheld submitter whose round succeeded receives
        that exception instead of a result -- nobody is acknowledged
        for work that failed to commit.

    Notes
    -----
    The queue binds to the running event loop on first ``submit`` and
    must not be shared across loops: a ``submit`` from any other loop
    raises ``RuntimeError`` immediately (the queue and its drain task
    live on the owning loop, so a foreign-loop future would hang or
    crash with ``attached to a different loop`` deep inside asyncio).
    After ``close`` the binding is released and the next ``submit``
    re-binds to its loop.

    Entries whose submitter has gone away (the awaiting task was
    cancelled) are *skipped*, not processed: charging the consumer --
    for a release session, spending privacy budget -- on behalf of an
    abandoned request would mutate state nobody observes, and any
    exception it raised would vanish.  Skipped entries are excluded from
    coalesced batches and counted in :meth:`stats` as ``cancelled``.

    ``close`` drains outstanding items before stopping, so no submitted
    work is lost on shutdown; submissions that arrive *while* ``close``
    is in progress raise :class:`QueueClosed` instead of being stranded.
    ``high_watermark`` records the deepest backlog observed and
    ``batch_high_watermark`` the largest coalesced batch -- the two
    numbers operators use to size ``maxsize`` and the session's
    ``window_size``.
    """

    def __init__(
        self,
        process: Callable[[Any], Any],
        maxsize: int = 64,
        *,
        batch_size: int = 1,
        process_batch: Optional[Callable[[List[Any]], List[Any]]] = None,
        registry=None,
        offload: bool = False,
        commit: Optional[Callable[[], None]] = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._process = process
        self._process_batch = process_batch
        self._registry = registry if registry is not None else NULL_REGISTRY
        self._maxsize = maxsize
        self._batch_size = batch_size
        self._offload = offload
        self._commit = commit
        self._executor = None  # the lane thread, created on first drain
        self._pending: list = []  # (live, outcomes) awaiting commit
        self._pending_items = 0
        self._queue: Optional[asyncio.Queue] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._in_flight = 0  # submitters between entry and result delivery
        self._closing = False
        self.submitted = 0
        self.processed = 0
        self.cancelled = 0
        self.group_commits = 0
        self.high_watermark = 0
        self.batch_high_watermark = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def batch_size(self) -> int:
        return self._batch_size

    @property
    def depth(self) -> int:
        """Items currently queued (unprocessed)."""
        return 0 if self._queue is None else self._queue.qsize()

    def stats(self) -> dict:
        """Operational counters, for session summaries and dashboards.
        ``processed`` counts entries actually handed to the consumer;
        ``cancelled`` counts entries skipped because their submitter
        abandoned them first (``submitted == processed + cancelled``
        once fully drained)."""
        return {
            "maxsize": self._maxsize,
            "batch_size": self._batch_size,
            "depth": self.depth,
            "submitted": self.submitted,
            "processed": self.processed,
            "cancelled": self.cancelled,
            "group_commits": self.group_commits,
            "offload": self._offload,
            "high_watermark": self.high_watermark,
            "batch_high_watermark": self.batch_high_watermark,
        }

    async def submit(self, item: Any) -> Any:
        """Enqueue ``item`` and wait for its result.

        Applies backpressure: when the queue is full this parks until the
        drain task frees a slot.  Results (or exceptions) are delivered
        per item, in FIFO order.  Raises :class:`QueueClosed` when called
        while :meth:`close` is in progress.
        """
        if self._closing:
            raise QueueClosed("queue is closing; submission rejected")
        loop = asyncio.get_running_loop()
        if self._queue is not None and loop is not self._loop:
            raise RuntimeError(
                "BoundedIngestQueue is bound to a different event loop; "
                "it binds to the loop of its first submit -- create one "
                "queue per loop (or close() it before reusing elsewhere)"
            )
        self._ensure_started()
        assert self._queue is not None
        future: asyncio.Future = loop.create_future()
        self._in_flight += 1
        registry = self._registry
        if registry.enabled and self._queue.full():
            registry.counter("queue.backpressure_stalls").inc()
        try:
            t0 = time.perf_counter() if registry.enabled else 0.0
            await self._queue.put((item, future, t0))
            self.submitted += 1
            self.high_watermark = max(
                self.high_watermark, self._queue.qsize()
            )
            if registry.enabled:
                registry.timeseries("queue.depth").record(self._queue.qsize())
            return await future
        finally:
            self._in_flight -= 1

    async def close(self) -> None:
        """Drain every outstanding item, then stop the drain task.

        Idempotent; a fully closed queue restarts on the next
        :meth:`submit`.  Producers already parked when ``close`` begins
        are drained normally; *new* submissions racing the close raise
        :class:`QueueClosed` rather than hanging on a dying queue.
        """
        if self._queue is None:
            return
        self._closing = True
        try:
            # join() alone can return while a producer is still parked
            # inside put() (the drain's final get() frees the slot before
            # the parked putter runs), so keep draining until no submitter
            # is in flight -- otherwise cancelling the drain task would
            # strand that producer on a future nobody will ever resolve.
            while self._in_flight or not self._queue.empty():
                await self._queue.join()
                await asyncio.sleep(0)
            assert self._drain_task is not None
            self._drain_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._drain_task
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            self._queue = None
            self._drain_task = None
            self._loop = None
        finally:
            self._closing = False

    def _ensure_started(self) -> None:
        if self._queue is None:
            self._loop = asyncio.get_running_loop()
            if self._offload and self._executor is None:
                # One thread exactly: the lane.  Rounds stay strictly
                # sequential because the drain task awaits each one, so
                # the single worker is an ordering guarantee, not a cap.
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-lane"
                )
            self._queue = asyncio.Queue(maxsize=self._maxsize)
            self._drain_task = self._loop.create_task(self._drain())

    def _next_batch(self, first) -> list:
        """Coalesce up to ``batch_size`` queued entries, FIFO."""
        assert self._queue is not None
        batch = [first]
        while len(batch) < self._batch_size:
            try:
                batch.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                break
        self.batch_high_watermark = max(
            self.batch_high_watermark, len(batch)
        )
        return batch

    def _finish(self, count: int) -> None:
        assert self._queue is not None
        for _ in range(count):
            self.processed += 1
            self._queue.task_done()

    def _skip_cancelled(self, count: int = 1) -> None:
        """Account for entries dropped because their submitter abandoned
        them: they are done as far as the queue is concerned, but the
        consumer never saw them."""
        assert self._queue is not None
        self._registry.counter("queue.cancelled").inc(count)
        for _ in range(count):
            self.cancelled += 1
            self._queue.task_done()

    def _observe_wait(self, entries) -> None:
        """Record how long each entry sat queued before reaching the
        consumer (only meaningful -- and only measured -- when a real
        registry stamped the submission)."""
        if not self._registry.enabled:
            return
        now = time.perf_counter()
        waits = self._registry.histogram("queue.wait.seconds")
        for entry in entries:
            waits.observe(now - entry[2])

    def _run_round(self, items: list) -> List[Tuple[str, Any]]:
        """Consumer side of one drained round: pure compute, no future or
        event-loop access, so it can run on the lane thread unchanged.
        Returns one ``("ok", result)`` / ``("error", exception)`` outcome
        per item, in order, and never raises.
        """
        if self._process_batch is not None:
            try:
                results = self._process_batch(list(items))
                if len(results) != len(items):
                    raise RuntimeError(
                        f"process_batch returned {len(results)} results "
                        f"for {len(items)} items"
                    )
            except BaseException:  # noqa: BLE001 -- retried per item below
                # process_batch raises before mutating state (its
                # documented contract), so the whole round can be retried
                # item by item: healthy submissions succeed exactly as
                # they would have with batch_size=1, and only the
                # poisoned one receives its exception.
                pass
            else:
                return [("ok", result) for result in results]
        outcomes: List[Tuple[str, Any]] = []
        for item in items:
            try:
                outcomes.append(("ok", self._process(item)))
            except BaseException as error:  # noqa: BLE001 -- relayed below
                outcomes.append(("error", error))
        return outcomes

    def _deliver(self, live: list, outcomes: List[Tuple[str, Any]]) -> None:
        """Resolve each submitter's future from its round outcome.  Runs
        on the owning loop (futures are not thread-safe).  A submitter
        that cancelled while its round was computing is simply not
        resolved -- same as the pre-offload behaviour."""
        for entry, (status, value) in zip(live, outcomes):
            future = entry[1]
            if future.cancelled():
                continue
            if status == "ok":
                future.set_result(value)
            else:
                future.set_exception(value)
        self._finish(len(live))

    async def _flush_pending(self) -> None:
        """Group commit: run ``commit`` once for every parked round, then
        deliver all withheld results.  On commit failure, submitters whose
        rounds *succeeded* get the commit exception instead -- their work
        is not durable, so acknowledging it would lie."""
        pending, self._pending = self._pending, []
        self._pending_items = 0
        commit_error: Optional[BaseException] = None
        try:
            if self._offload:
                await self._loop.run_in_executor(self._executor, self._commit)
            else:
                self._commit()
        except BaseException as error:  # noqa: BLE001 -- relayed below
            commit_error = error
            self._registry.counter("queue.commit_failures").inc()
        else:
            self.group_commits += 1
            self._registry.counter("queue.group_commits").inc()
        for live, outcomes in pending:
            if commit_error is not None:
                outcomes = [
                    ("error", commit_error) if status == "ok" else (status, value)
                    for status, value in outcomes
                ]
            self._deliver(live, outcomes)

    async def _drain(self) -> None:
        assert self._queue is not None
        while True:
            first = await self._queue.get()
            if self._process_batch is None:
                batch = [first]
            else:
                batch = self._next_batch(first)
            # Cancelled submitters never reach the consumer: their
            # entries are excluded from the round up front (processing
            # them would spend budget nobody observes).
            live = []
            for entry in batch:
                if entry[1].cancelled():
                    self._skip_cancelled()
                else:
                    live.append(entry)
            if live:
                self._observe_wait(live)
                items = [entry[0] for entry in live]
                if self._offload:
                    # The loop is free while the lane computes: readers
                    # keep enqueuing, so the *next* round coalesces a
                    # real backlog.
                    outcomes = await self._loop.run_in_executor(
                        self._executor, self._run_round, items
                    )
                else:
                    outcomes = self._run_round(items)
                if self._commit is None:
                    self._deliver(live, outcomes)
                else:
                    self._pending.append((live, outcomes))
                    self._pending_items += len(live)
            # Commit once per burst: when the backlog empties (or enough
            # results are parked), not once per round.  Checked even on
            # all-cancelled rounds so parked results can't be stranded.
            if self._pending and (
                self._queue.empty() or self._pending_items >= self._maxsize
            ):
                await self._flush_pending()
