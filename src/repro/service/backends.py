"""Accountant backends: one protocol, two engines, automatic selection.

The paper's release model is implemented twice in this library -- the
scalar :class:`~repro.core.accountant.TemporalPrivacyAccountant` path
(one object per user, simple and exact) and the cohort-vectorised
:class:`~repro.fleet.engine.FleetAccountant` path (population scale).
:class:`AccountantBackend` is the structural protocol the service layer
programs against, and the two adapters here give both engines identical
semantics:

* the same stream interface (``add_release`` with per-user overrides,
  ``rollback_last`` for probe-and-undo policies),
* the same queries (``max_tpl``, ``profile`` returning
  :meth:`~repro.core.leakage.LeakageProfile.empty` before any release),
* the same checkpoint surface (``save`` / ``restore``).

The protocol is **batch-first**: the primary mutation is ``add_window``,
which applies a whole :class:`~repro.service.window.ReleaseWindow` of
releases in one backend entry and reports the per-step worst-case TPL
series (:class:`~repro.service.window.WindowResult`).  ``add_release`` is
kept as a thin one-element-window wrapper for event-at-a-time callers.

:func:`make_backend` picks the backend automatically by population size
(``auto``), or honours an explicit choice.  Bit-identical results across
the two backends -- *and* across windowed vs. per-event ingestion -- are
a hard guarantee, enforced by the property-based parity suite
(``tests/test_service_parity.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (
    Dict,
    Hashable,
    Iterable,
    Mapping,
    Optional,
    Protocol,
    runtime_checkable,
)

import numpy as np

from ..core.accountant import TemporalPrivacyAccountant
from ..core.adversary import AdversaryT
from ..core.budget import validate_epsilon
from ..core.leakage import LeakageProfile
from ..fleet.checkpoint import (
    decode_user_id,
    encode_user_id,
    load_checkpoint,
    save_checkpoint,
)
from ..fleet.engine import FleetAccountant
from ..fleet.solution_cache import SolutionCache
from ..obs.metrics import NULL_REGISTRY
from .window import ReleaseWindow, WindowResult

__all__ = [
    "AccountantBackend",
    "ScalarAccountantBackend",
    "FleetAccountantBackend",
    "make_backend",
    "normalise_correlations",
    "DEFAULT_FLEET_THRESHOLD",
]

#: Population size at which ``backend="auto"`` switches from the per-user
#: scalar path to the cohort-vectorised fleet path.  Below this the scalar
#: path's constant factors win; above it the O(cohorts x T) recursions do.
DEFAULT_FLEET_THRESHOLD = 64

SCALAR_CHECKPOINT_KIND = "scalar_checkpoint"
SCALAR_MANIFEST_NAME = "scalar_manifest.json"
_SCALAR_FORMAT_VERSION = 1


def normalise_correlations(correlations) -> Dict[Hashable, object]:
    """Normalise any accepted correlation spec -- one ``(P_B, P_F)`` pair,
    an :class:`AdversaryT`, or a mapping ``user -> pair / AdversaryT`` --
    into a user mapping.  A bare pair registers as user ``0``, matching
    both accountants' constructors."""
    if correlations is None:
        raise ValueError("at least one user correlation is required")
    if isinstance(correlations, Mapping):
        users = dict(correlations)
        if not users:
            raise ValueError("at least one user correlation is required")
        return users
    return {0: correlations}


def _resolved_steps(window: ReleaseWindow):
    """Check a backend-bound window and yield its ``(epsilon, overrides)``
    pairs.  Backends require every step's budget to be concrete -- the
    session resolves its schedule before calling in."""
    if not isinstance(window, ReleaseWindow):
        raise TypeError(
            f"add_window expects a ReleaseWindow, got {type(window).__name__}"
        )
    steps = []
    for i, step in enumerate(window.steps):
        if step.epsilon is None:
            raise ValueError(
                f"window step {i} has no budget; resolve the schedule "
                "before handing the window to a backend"
            )
        steps.append((step.epsilon, step.overrides))
    return steps


@runtime_checkable
class AccountantBackend(Protocol):
    """Structural protocol every accounting backend satisfies.

    The service layer (:class:`~repro.service.session.ReleaseSession`)
    talks only to this surface; scalar and fleet engines are
    interchangeable behind it and must return bit-identical numbers for
    identical inputs.

    ``add_window`` is the primary mutation: one backend entry applies a
    whole window of releases and returns the per-step worst-case TPL
    series, each element bit-identical to what the corresponding
    ``add_release`` call would have returned.  ``add_release`` remains as
    a one-element-window compatibility wrapper, and ``rollback(n)``
    undoes the last ``n`` steps exactly (``rollback_last`` ==
    ``rollback(1)``).  ``probe_scales`` answers -- read-only -- the
    worst-case TPL a release scaled by each candidate factor would
    report, bit-identical to probing each scale with ``add_release`` +
    ``rollback_last``; the session's clamp bisection evaluates whole
    levels through it in one backend entry.
    """

    name: str
    supports_checkpoint: bool

    @property
    def horizon(self) -> int: ...

    @property
    def epsilons(self) -> np.ndarray: ...

    @property
    def users(self) -> Iterable[Hashable]: ...

    @property
    def n_users(self) -> int: ...

    def add_window(self, window: ReleaseWindow) -> WindowResult: ...

    def add_release(
        self,
        epsilon: float,
        overrides: Optional[Mapping[Hashable, float]] = None,
    ) -> float: ...

    def rollback_last(self) -> None: ...

    def rollback(self, n: int = 1) -> None: ...

    def probe_scales(
        self,
        epsilon: float,
        overrides: Optional[Mapping[Hashable, float]],
        scales: Iterable[float],
    ) -> np.ndarray: ...

    def max_tpl(self) -> float: ...

    def profile(self, user: Optional[Hashable] = None) -> LeakageProfile: ...

    def save(self, directory) -> Path: ...


class ScalarAccountantBackend:
    """The paper's per-user path behind the backend protocol.

    One :class:`TemporalPrivacyAccountant` per user -- O(users x T) work,
    but zero vectorisation subtleties, which makes it the reference
    implementation the fleet backend is tested against.  Per-user budget
    overrides (personalised DP) simply feed each user's accountant their
    own epsilon.
    """

    name = "scalar"
    supports_checkpoint = True

    def __init__(
        self,
        correlations,
        cache: Optional[SolutionCache] = None,
        registry=None,
    ) -> None:
        users = normalise_correlations(correlations)
        self._registry = registry if registry is not None else NULL_REGISTRY
        self._accountants: Dict[Hashable, TemporalPrivacyAccountant] = {
            user: TemporalPrivacyAccountant({user: value}, cache=cache)
            for user, value in users.items()
        }
        self._epsilons: list = []

    # -- stream interface ----------------------------------------------
    def add_window(self, window: ReleaseWindow) -> WindowResult:
        """Apply a window of releases step by step (the scalar engine has
        nothing to vectorise across time) and report the per-step
        worst-case TPL series.  All budgets are validated before any
        accountant is touched, so a bad step leaves the state unchanged.
        """
        with self._registry.span("backend.add_window.seconds", backend=self.name):
            result = self._add_window(window)
        self._registry.counter("backend.steps", backend=self.name).inc(
            len(result.max_tpls)
        )
        return result

    def _add_window(self, window: ReleaseWindow) -> WindowResult:
        steps = []
        for epsilon, overrides in _resolved_steps(window):
            epsilon = validate_epsilon(epsilon)
            overrides = dict(overrides) if overrides else {}
            for user, eps_u in overrides.items():
                if user not in self._accountants:
                    raise KeyError(f"override for unknown user {user!r}")
                validate_epsilon(eps_u, name="override epsilon")
            steps.append((epsilon, overrides))
        worsts = np.empty(len(steps))
        start = len(self._epsilons)
        try:
            for i, (epsilon, overrides) in enumerate(steps):
                for user, accountant in self._accountants.items():
                    accountant.add_release(overrides.get(user, epsilon))
                self._epsilons.append(epsilon)
                worsts[i] = self.max_tpl()
        except BaseException:
            # A solver fault mid-window must not leave some users with
            # an extra release: each accountant's add_release is atomic,
            # so rolling every accountant back to the entry horizon is
            # an exact undo.
            for accountant in self._accountants.values():
                accountant.rollback(accountant.horizon - start)
            del self._epsilons[start:]
            raise
        return WindowResult(worsts)

    def add_release(
        self,
        epsilon: float,
        overrides: Optional[Mapping[Hashable, float]] = None,
    ) -> float:
        """One-element-window compatibility wrapper over
        :meth:`add_window`."""
        return self.add_window(
            ReleaseWindow.single(epsilon=epsilon, overrides=overrides)
        ).final_max_tpl

    def rollback_last(self) -> None:
        self.rollback(1)

    def rollback(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if n > len(self._epsilons):
            if not self._epsilons:
                raise ValueError("no releases to roll back")
            raise ValueError(
                f"cannot roll back {n} releases; only "
                f"{len(self._epsilons)} recorded"
            )
        for _ in range(n):
            for accountant in self._accountants.values():
                accountant.rollback_last()
            self._epsilons.pop()

    def probe_scales(
        self,
        epsilon: float,
        overrides: Optional[Mapping[Hashable, float]] = None,
        scales: Iterable[float] = (),
    ) -> np.ndarray:
        """Worst-case TPL of ``add_release(epsilon * s, {u: eps_u * s})``
        per scale ``s``, state untouched on return.

        The scalar path is the reference implementation: literally the
        serial probe loop (add + read + rollback per scale), so the
        vectorised fleet/sharded probes are pinned against it bit for
        bit by the parity suites."""
        overrides = dict(overrides) if overrides else None
        scales = [float(s) for s in scales]
        worsts = np.empty(len(scales))
        for i, scale in enumerate(scales):
            scaled = (
                {user: eps * scale for user, eps in overrides.items()}
                if overrides
                else None
            )
            worsts[i] = self.add_release(epsilon * scale, scaled)
            self.rollback_last()
        return worsts

    # -- queries --------------------------------------------------------
    def max_tpl(self) -> float:
        if not self._epsilons:
            return 0.0
        return max(a.max_tpl() for a in self._accountants.values())

    def profile(self, user: Optional[Hashable] = None) -> LeakageProfile:
        if user is None:
            if len(self._accountants) != 1:
                raise ValueError("multiple users tracked; specify which one")
            user = next(iter(self._accountants))
        try:
            accountant = self._accountants[user]
        except KeyError:
            raise KeyError(f"unknown user {user!r}") from None
        return accountant.profile(user)

    @property
    def horizon(self) -> int:
        return len(self._epsilons)

    @property
    def epsilons(self) -> np.ndarray:
        return np.asarray(self._epsilons, dtype=float)

    @property
    def users(self) -> Iterable[Hashable]:
        return self._accountants.keys()

    @property
    def n_users(self) -> int:
        return len(self._accountants)

    def user_epsilons(self, user: Hashable) -> np.ndarray:
        """The budget vector actually spent on ``user`` (overrides
        applied) -- mirrors :meth:`FleetAccountant.user_epsilons`."""
        return self._accountants[user].epsilons

    # -- checkpointing --------------------------------------------------
    def save(self, directory) -> Path:
        """Persist the stream (default + per-user budget vectors) as a
        JSON manifest.  Restoring replays the stream through fresh
        accountants, which reproduces the leakage state bit-for-bit --
        the recursions are deterministic in their inputs."""
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        manifest = {
            "format": _SCALAR_FORMAT_VERSION,
            "kind": SCALAR_CHECKPOINT_KIND,
            "default": [float(e) for e in self._epsilons],
            "users": [
                {
                    "user": encode_user_id(user),
                    "eps": accountant.epsilons.tolist(),
                }
                for user, accountant in self._accountants.items()
            ],
        }
        (path / SCALAR_MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2) + "\n", encoding="utf-8"
        )
        return path

    @classmethod
    def restore(
        cls,
        directory,
        correlations,
        cache: Optional[SolutionCache] = None,
        registry=None,
    ) -> "ScalarAccountantBackend":
        """Rebuild a backend from :meth:`save` output.  ``correlations``
        must describe the same user population (correlation models are
        not serialised on the scalar path; they live in the session
        config)."""
        manifest = json.loads(
            (Path(directory) / SCALAR_MANIFEST_NAME).read_text(
                encoding="utf-8"
            )
        )
        if manifest.get("kind") != SCALAR_CHECKPOINT_KIND:
            raise ValueError(f"{directory} is not a scalar checkpoint")
        if manifest.get("format") != _SCALAR_FORMAT_VERSION:
            raise ValueError(
                f"unsupported scalar checkpoint format "
                f"{manifest.get('format')!r}"
            )
        backend = cls(correlations, cache=cache, registry=registry)
        saved = {
            decode_user_id(entry["user"]): entry["eps"]
            for entry in manifest["users"]
        }
        if set(saved) != set(backend._accountants):
            raise ValueError(
                "checkpoint user population does not match the configured "
                "correlations"
            )
        for user, eps_series in saved.items():
            accountant = backend._accountants[user]
            for eps in eps_series:
                accountant.add_release(float(eps))
        backend._epsilons = [float(e) for e in manifest["default"]]
        return backend


class FleetAccountantBackend:
    """The cohort-vectorised population path behind the backend protocol."""

    name = "fleet"
    supports_checkpoint = True

    def __init__(
        self,
        correlations,
        cache: Optional[SolutionCache] = None,
        *,
        engine: Optional[FleetAccountant] = None,
        registry=None,
    ) -> None:
        self._registry = registry if registry is not None else NULL_REGISTRY
        if engine is not None:
            self._fleet = engine
            if registry is not None:
                engine.instrument(registry)
        else:
            users = normalise_correlations(correlations)
            self._fleet = FleetAccountant(users, cache=cache, registry=registry)

    @property
    def fleet(self) -> FleetAccountant:
        """The wrapped engine (escape hatch for fleet-only features such
        as ``migrate_user``)."""
        return self._fleet

    def add_window(self, window: ReleaseWindow) -> WindowResult:
        """Apply a window through the engine's vectorised multi-step
        path (:meth:`FleetAccountant.add_window`)."""
        steps = _resolved_steps(window)
        with self._registry.span("backend.add_window.seconds", backend=self.name):
            result = WindowResult(
                self._fleet.add_window(
                    [epsilon for epsilon, _ in steps],
                    [overrides for _, overrides in steps],
                )
            )
        self._registry.counter("backend.steps", backend=self.name).inc(len(steps))
        return result

    def add_release(
        self,
        epsilon: float,
        overrides: Optional[Mapping[Hashable, float]] = None,
    ) -> float:
        """One-element-window compatibility wrapper over
        :meth:`add_window`."""
        return self.add_window(
            ReleaseWindow.single(epsilon=epsilon, overrides=overrides)
        ).final_max_tpl

    def rollback_last(self) -> None:
        self._fleet.rollback_last()

    def rollback(self, n: int = 1) -> None:
        self._fleet.rollback(n)

    def probe_scales(
        self,
        epsilon: float,
        overrides: Optional[Mapping[Hashable, float]] = None,
        scales: Iterable[float] = (),
    ) -> np.ndarray:
        """Read-only multi-scale probe through the engine's stacked
        ``(rows, scales)`` sweep
        (:meth:`FleetAccountant.probe_release_scales`)."""
        with self._registry.span(
            "backend.probe_scales.seconds", backend=self.name
        ):
            return self._fleet.probe_release_scales(epsilon, overrides, scales)

    def max_tpl(self) -> float:
        return self._fleet.max_tpl()

    def profile(self, user: Optional[Hashable] = None) -> LeakageProfile:
        return self._fleet.profile(user)

    @property
    def horizon(self) -> int:
        return self._fleet.horizon

    @property
    def epsilons(self) -> np.ndarray:
        return self._fleet.epsilons

    @property
    def users(self) -> Iterable[Hashable]:
        return self._fleet.users

    @property
    def n_users(self) -> int:
        return self._fleet.n_users

    def user_epsilons(self, user: Hashable) -> np.ndarray:
        return self._fleet.user_epsilons(user)

    def save(self, directory) -> Path:
        return save_checkpoint(self._fleet, directory)

    @classmethod
    def restore(
        cls,
        directory,
        correlations=None,
        cache: Optional[SolutionCache] = None,
        registry=None,
    ) -> "FleetAccountantBackend":
        """Rebuild a backend from a fleet checkpoint (correlation models
        are serialised in the ``.npz``, so ``correlations`` is unused and
        accepted only for signature symmetry with the scalar backend)."""
        return cls(
            None,
            engine=load_checkpoint(directory, cache=cache),
            registry=registry,
        )


def make_backend(
    correlations,
    *,
    backend: str = "auto",
    fleet_threshold: int = DEFAULT_FLEET_THRESHOLD,
    cache: Optional[SolutionCache] = None,
    shards: int = 1,
    registry=None,
    shard_transport: str = "pipe",
    shard_addresses=None,
) -> AccountantBackend:
    """Build the accounting backend for a population.

    ``backend="auto"`` (the default) selects by population size: scalar
    below ``fleet_threshold`` users, fleet at or above it.  ``"scalar"``
    and ``"fleet"`` force the choice.  ``shards >= 2`` puts the fleet
    path behind a process-sharded coordinator
    (:class:`~repro.service.sharding.ShardedFleetBackend`, bit-identical
    to the single-process fleet backend); sharding implies the fleet
    path, so ``"auto"`` resolves to it and an explicit ``"scalar"`` is an
    error.  ``shard_transport`` picks the coordinator/worker channel
    (``"pipe"`` forked processes, ``"socket"`` framed TCP);
    ``shard_addresses`` dials already-running ``repro shard-worker``
    processes (implies socket, one shard per address).
    """
    users = normalise_correlations(correlations)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    sharded = shards > 1 or shard_addresses is not None
    if backend == "auto":
        backend = (
            "fleet"
            if sharded or len(users) >= fleet_threshold
            else "scalar"
        )
    if backend == "scalar":
        if sharded:
            raise ValueError(
                "sharded accounting runs on the fleet engine; "
                "backend='scalar' cannot be combined with shards="
                f"{shards}"
            )
        return ScalarAccountantBackend(users, cache=cache, registry=registry)
    if backend == "fleet":
        if sharded:
            from .sharding import ShardedFleetBackend

            return ShardedFleetBackend(
                users,
                shards=shards,
                cache=cache,
                registry=registry,
                transport=shard_transport,
                shard_addresses=shard_addresses,
            )
        return FleetAccountantBackend(users, cache=cache, registry=registry)
    raise ValueError(
        f"backend must be 'auto', 'scalar' or 'fleet', got {backend!r}"
    )
