"""Fig. 5: the headline runtime comparison -- Algorithm 1 vs generic LP.

The pytest-benchmark comparison table *is* the reproduced figure: each
(solver, n) / (solver, alpha) cell is one benchmark case.  Expected shape
(the paper's claim): Algorithm 1 and Dinkelbach in the microsecond range
and polynomially growing; the Charnes-Cooper pipelines (scipy/HiGGS as
"Gurobi", our tableau simplex as "lp_solve") orders of magnitude slower
and exploding with n, which is why their n is capped (the paper likewise
truncates them beyond n = 150).
"""

import pytest

from repro.core import LfpProblem, solve_pair
from repro.lp import solve_lfp_dinkelbach, solve_lfp_scipy, solve_lfp_simplex
from repro.markov import random_stochastic_matrix

N_VALUES = (10, 25, 50, 100, 150)
BASELINE_CAP = 50  # generic solvers beyond this dominate the whole run
ALPHA_VALUES = (0.001, 0.1, 1.0, 10.0, 20.0)

SOLVERS = {
    "algorithm1": lambda p: solve_pair(p.q, p.d, p.alpha).log_value,
    "dinkelbach": lambda p: solve_lfp_dinkelbach(p).log_value,
    "scipy_highs": solve_lfp_scipy,
    "simplex": solve_lfp_simplex,
}


def _problem(n: int, alpha: float) -> LfpProblem:
    matrix = random_stochastic_matrix(n, seed=n)
    return LfpProblem(matrix.array[0], matrix.array[1], alpha)


@pytest.mark.parametrize("n", N_VALUES)
@pytest.mark.parametrize("solver", list(SOLVERS))
def test_fig5a_runtime_vs_n(benchmark, solver, n):
    """Panel (a): one LFP instance per n, alpha = 10."""
    if solver in ("scipy_highs", "simplex") and n > BASELINE_CAP:
        pytest.skip("generic baseline capped (paper truncates them too)")
    problem = _problem(n, alpha=10.0)
    benchmark.group = f"fig5a n={n}"
    value = benchmark(SOLVERS[solver], problem)
    # All solvers must agree on the optimum (paper's correctness check);
    # generic backends only participate below the precision knee.
    reference = solve_pair(problem.q, problem.d, problem.alpha).log_value
    assert value == pytest.approx(reference, abs=1e-5)


@pytest.mark.parametrize("alpha", ALPHA_VALUES)
@pytest.mark.parametrize("solver", ["algorithm1", "dinkelbach"])
def test_fig5b_runtime_vs_alpha(benchmark, solver, alpha):
    """Panel (b): runtime vs alpha at n = 50 for the exact solvers.

    (The paper notes lp_solve breaks down for alpha >= 10; our generic
    backends share that precision limit, so panel (b) benchmarks the
    solvers that remain correct across the whole alpha range.)
    """
    problem = _problem(50, alpha=alpha)
    benchmark.group = f"fig5b alpha={alpha}"
    value = benchmark(SOLVERS[solver], problem)
    reference = solve_pair(problem.q, problem.d, problem.alpha).log_value
    assert value == pytest.approx(reference, abs=1e-9)


def test_fig5_full_matrix_quantification(benchmark):
    """End-to-end Algorithm 1 over all ordered row pairs of an n = 150
    matrix (the paper's '11 seconds in Java' workload) -- our batched
    implementation finishes in well under a second."""
    from repro.core import max_log_ratio

    matrix = random_stochastic_matrix(150, seed=0)
    value = benchmark(max_log_ratio, matrix, 10.0)
    assert 0.0 < value <= 10.0
