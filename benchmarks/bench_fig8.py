"""Benchmark + reproduction of Fig. 8 (data utility of 2-DP_T releases)."""

import pytest

from repro.experiments import fig8


def test_fig8a_noise_vs_horizon(benchmark, show_table):
    result = benchmark(
        fig8.run_vs_horizon, alpha=2.0, horizons=(5, 10, 50), n=50, s=0.001
    )
    show_table(fig8.format_table(result))
    # Algorithm 3 beats Algorithm 2 at every finite horizon; the gap is
    # largest at T = 5 (the paper's panel a).
    gaps = [n2 - n3 for n2, n3 in zip(result.noise2, result.noise3)]
    assert all(g > 0 for g in gaps)
    assert gaps[0] >= gaps[-1]
    # Algorithm 2's noise is horizon-independent (same eps regardless of T).
    assert result.noise2[0] == pytest.approx(result.noise2[-1])


def test_fig8b_noise_vs_correlation(benchmark, show_table):
    result = benchmark(
        fig8.run_vs_correlation,
        alpha=2.0,
        s_values=(0.01, 0.1, 1.0),
        n=50,
        horizon=10,
    )
    show_table(fig8.format_table(result))
    # Utility decays sharply under strong correlations (small s)...
    assert result.noise3[0] > 2 * result.noise3[-1]
    # ...and approaches the independent-data reference as s grows.
    assert result.noise3[-1] < 3 * result.reference
