"""Shared plumbing for the ``benchmarks/bench_*.py`` scripts.

Every benchmark here builds the same synthetic population shape (a few
cohort transition models assigned round-robin to ``users`` users) and
emits a ``BENCH_*.json`` summary.  This module keeps both in one place
so the scripts measure, rather than re-implement, and so every emitted
JSON carries the same environment block (``cpu_count``, ``python``,
``git_sha``) via :func:`repro.obs.bench.emit_json` -- a regressed (or
suspiciously good) number must be attributable to the box it ran on.
"""

from repro.markov import random_stochastic_matrix
from repro.obs.bench import emit_json, environment_metadata, git_sha

__all__ = [
    "cohort_models",
    "population",
    "emit_json",
    "environment_metadata",
    "git_sha",
]


def cohort_models(cohorts: int, states: int, seed: int) -> list:
    """One random row-stochastic transition matrix per cohort."""
    return [
        random_stochastic_matrix(states, seed=seed + i) for i in range(cohorts)
    ]


def population(users: int, cohorts: int, states: int, seed: int) -> dict:
    """``user -> (prior_model, posterior_model)`` with users assigned to
    cohorts round-robin -- the population shape every benchmark uses."""
    models = cohort_models(cohorts, states, seed)
    return {u: (models[u % cohorts], models[u % cohorts]) for u in range(users)}
