"""Benchmark + reproduction of Fig. 4 (max BPL over time, Theorem-5
suprema)."""

import pytest

from repro.experiments import fig4


def test_fig4_supremum_panels(benchmark, show_table):
    result = benchmark(fig4.run, horizon=100)
    show_table(fig4.format_table(result))
    suprema = [case.supremum for case in result.cases]
    # (a), (b): no supremum; (c), (d): closed-form values.
    assert suprema[0] is None and suprema[1] is None
    assert suprema[2] == pytest.approx(1.1922, abs=1e-4)
    assert suprema[3] == pytest.approx(0.7923, abs=1e-4)
    # Step-by-step recursion agrees with the closed form (Example 4).
    assert result.cases[3].bpl[-1] == pytest.approx(suprema[3], abs=1e-6)
