"""Benchmark + reproduction of Fig. 7 (budget allocation profiles)."""

import numpy as np
import pytest

from repro.experiments import fig7


def test_fig7_allocation(benchmark, show_table):
    result = benchmark(fig7.run, alpha=1.0, horizon=30)
    show_table(fig7.format_table(result))
    # Algorithm 3 achieves exactly 1-DP_T at every time point...
    assert result.profile3.tpl == pytest.approx(np.full(30, 1.0), rel=1e-6)
    # ...while Algorithm 2 stays strictly below and ramps up.
    assert result.profile2.max_tpl < 1.0
    assert result.profile2.tpl[0] < result.profile2.tpl[9]
    # Algorithm 3 boosts the first and last budgets (the paper's plot).
    eps3 = result.allocation3.epsilons(30)
    assert eps3[0] > eps3[1] and eps3[-1] > eps3[-2]
