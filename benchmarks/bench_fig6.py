"""Benchmark + reproduction of Fig. 6 (leakage vs correlation degree)."""

import numpy as np
import pytest

from repro.experiments import fig6


def test_fig6a_eps1(benchmark, show_table):
    result = benchmark(
        fig6.run, epsilon=1.0, horizon=15,
        configs=((0.0, 50), (0.005, 50), (0.005, 200), (0.05, 50)),
    )
    show_table(fig6.format_table(result))
    by_label = {s.label: np.asarray(s.y) for s in result.series}
    # Shape claims of the paper: ordering by correlation strength.
    assert by_label["s=0.0 (n=50)"][-1] > by_label["s=0.005 (n=50)"][-1]
    assert by_label["s=0.005 (n=50)"][-1] > by_label["s=0.05 (n=50)"][-1]
    assert by_label["s=0.005 (n=50)"][-1] > by_label["s=0.005 (n=200)"][-1]


def test_fig6b_eps01(benchmark, show_table):
    result = benchmark(
        fig6.run, epsilon=0.1, horizon=150,
        configs=((0.005, 50), (0.05, 50)),
    )
    show_table(fig6.format_table(result))
    strong = np.asarray(result.series[0].y)
    # The paper's claim is comparative: at eps=0.1 the growth phase lasts
    # ~10x longer than at eps=1.  After 8 steps the eps=1 series is
    # essentially at its plateau while the eps=0.1 series is not.
    fast = np.asarray(
        fig6.run(epsilon=1.0, horizon=150, configs=((0.005, 50),)).series[0].y
    )
    assert strong[7] / strong[-1] < fast[7] / fast[-1]
    assert fast[7] / fast[-1] > 0.9  # eps=1 is near its plateau by t=8
