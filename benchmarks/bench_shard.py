"""Process-sharded vs. single-process fleet accounting throughput.

Cohorts are mutually independent, so the fleet engine shards across
worker processes with zero accuracy cost: the coordinator scatters each
ingestion window to every shard and merges the per-step worst-TPL series
by elementwise max (:mod:`repro.service.sharding`).  The numbers must
not move at all -- every shard count produces a bit-identical max TPL
(the sharding parity suite enforces the same property-based).

The speedup is real parallelism, so it needs real cores: per window the
coordinator exchanges a few hundred bytes with each shard while the
shards run their cohorts' prefix sweeps concurrently.  The acceptance
bar: >= 2x events/sec at 4 shards vs. the single-process fleet backend,
window=64, 10^5 users -- *on a machine with >= 4 cores*.  ``cpu_count``
is recorded in ``BENCH_shard.json`` so a floor miss on a smaller box is
attributable; on a single core the sharded path can only pay IPC tax,
and the harness-scale test gates its floor accordingly.

Run standalone for the full-scale numbers::

    PYTHONPATH=src python benchmarks/bench_shard.py --users 100000 --steps 256

or as part of the benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard.py -s
"""

import argparse
import os
import time

from _harness import emit_json, population
from repro.service import ReleaseSession, ReleaseWindow, SessionConfig

SHARD_COUNTS = (1, 2, 4)
WINDOW = 64
TARGET_SPEEDUP = 2.0  # at 4 shards, full scale, >= 4 cores
# Harness-scale floor for CI: deliberately loose (it still catches a
# sharded path that collapsed to serial or worse), because standard
# runners have exactly 4 contended vCPUs and the harness workload is
# small relative to IPC.
CI_TARGET_SPEEDUP = 1.1
JSON_PATH = "BENCH_shard.json"


def run_sharded(population, steps: int, epsilon: float, window: int, shards: int):
    """Time an accounting-only session ingesting ``steps`` time points in
    windows of ``window`` on ``shards`` worker processes (1 = the
    in-process fleet backend)."""
    session = ReleaseSession(
        SessionConfig(
            correlations=population,
            budgets=epsilon,
            backend="fleet",
            shards=shards,
            window_size=window,
        )
    )
    try:
        start = time.perf_counter()
        done = 0
        while done < steps:
            size = min(window, steps - done)
            session.ingest_window(ReleaseWindow.from_snapshots([None] * size))
            done += size
        elapsed = time.perf_counter() - start
        assert session.horizon == steps
        shard_users = (
            session.backend.shard_sizes() if shards > 1 else [len(population)]
        )
        return session.max_tpl(), elapsed, shard_users
    finally:
        session.close()


def compare(
    users: int = 100_000,
    cohorts: int = 32,
    steps: int = 256,
    epsilon: float = 0.1,
    states: int = 3,
    seed: int = 0,
    window: int = WINDOW,
    shard_counts=SHARD_COUNTS,
) -> dict:
    """Run every shard count over the same stream and summarise."""
    pop = population(users, cohorts, states, seed)
    rows = []
    baseline_tpl = None
    baseline_rate = None
    for shards in shard_counts:
        tpl, elapsed, shard_users = run_sharded(
            pop, steps, epsilon, window, shards
        )
        rate = steps / max(elapsed, 1e-12)
        if baseline_tpl is None:  # the first shard count is the baseline
            baseline_tpl, baseline_rate = tpl, rate
        rows.append(
            {
                "shards": shards,
                "max_tpl": tpl,
                "seconds": elapsed,
                "events_per_second": rate,
                "user_steps_per_second": rate * users,
                "shard_users": shard_users,
                "tpl_gap_vs_baseline": abs(tpl - baseline_tpl),
                "speedup_vs_baseline": rate / baseline_rate,
            }
        )
    return {
        "users": users,
        "cohorts": cohorts,
        "steps": steps,
        "epsilon": epsilon,
        "window": window,
        "cpu_count": os.cpu_count(),
        "target_speedup_at_4_shards": TARGET_SPEEDUP,
        "results": rows,
    }


def format_table(summary: dict) -> str:
    lines = [
        f"sharded vs single-process fleet accounting -- "
        f"{summary['users']} users, {summary['cohorts']} cohorts, "
        f"{summary['steps']} steps, window={summary['window']}, "
        f"eps={summary['epsilon']:g}, {summary['cpu_count']} cpu(s)",
        "  shards   events/s      speedup   max-TPL gap vs baseline",
    ]
    for row in summary["results"]:
        lines.append(
            f"  {row['shards']:<8d} {row['events_per_second']:<13,.1f} "
            f"{row['speedup_vs_baseline']:<9.2f} "
            f"{row['tpl_gap_vs_baseline']:.2e}"
        )
    lines.append(
        f"  target: >= {TARGET_SPEEDUP:g}x at 4 shards on >= 4 cores, "
        "bit-identical TPL at every shard count"
    )
    return "\n".join(lines)


def test_shard_speedup_and_parity(show_table):
    """Harness-scale comparison.  Bit-identical TPL is asserted
    unconditionally; the throughput floor only where the hardware can
    deliver one (parallel speedup needs cores -- on a 1-core runner the
    sharded path can only pay IPC overhead)."""
    summary = compare(users=2_000, cohorts=16, steps=128)
    show_table(format_table(summary))
    emit_json(summary, JSON_PATH)
    for row in summary["results"]:
        assert row["tpl_gap_vs_baseline"] == 0.0
        assert sum(row["shard_users"]) == summary["users"]
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        best = max(
            row["speedup_vs_baseline"]
            for row in summary["results"]
            if row["shards"] > 1
        )
        assert best >= CI_TARGET_SPEEDUP
    else:
        print(
            f"  (speedup floor skipped: {cpus} cpu(s); parallel sharding "
            "needs cores -- on this box the sharded rows only measure "
            "IPC overhead)"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=100_000)
    parser.add_argument("--cohorts", type=int, default=32)
    parser.add_argument("--steps", type=int, default=256)
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--states", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--window", type=int, default=WINDOW)
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=list(SHARD_COUNTS),
        help="shard counts to compare (the first is the baseline)",
    )
    parser.add_argument("-o", "--output", default=JSON_PATH)
    args = parser.parse_args()
    summary = compare(
        users=args.users,
        cohorts=args.cohorts,
        steps=args.steps,
        epsilon=args.epsilon,
        states=args.states,
        seed=args.seed,
        window=args.window,
        shard_counts=tuple(args.shards),
    )
    print(format_table(summary))
    path = emit_json(summary, args.output)
    print(f"results written to {path}")


if __name__ == "__main__":
    main()
