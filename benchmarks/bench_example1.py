"""Benchmark + reproduction of Example 1 / Fig. 1 (end-to-end release)."""

import numpy as np
import pytest

from repro.experiments import example1


def test_example1_end_to_end(benchmark, show_table):
    result = benchmark(example1.run, epsilon=1.0, seed=0)
    show_table(example1.format_table(result))
    # The released true counts are exactly Fig. 1(c).
    series = np.stack([r.true_answer for r in result.records])
    assert series.tolist() == [
        [0, 2, 1, 1, 0],
        [2, 0, 0, 1, 1],
        [2, 0, 1, 0, 1],
    ]
    # The naive Lap(1/eps) release leaks more than eps under the road
    # network's correlation, and exactly T eps under frozen traffic.
    assert result.profile.max_tpl > result.epsilon
    horizon = result.dataset.horizon
    assert result.identity_profile.max_tpl == pytest.approx(
        horizon * result.epsilon
    )
