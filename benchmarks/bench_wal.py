"""Write-ahead log append cost and snapshot+tail recovery speed.

Durability must not tax the serving path: the WAL appends one CRC-framed
JSON record per ingestion window *before* any accounting mutation, so
its cost is flat in the length of the log -- unlike full ``.npz``
checkpoints, whose cost grows with accumulated state.  This benchmark
checks two properties:

* **append stays flat**: the median raw ``WriteAheadLog.append`` time in
  the last quartile of a long run of appends must not drift above the
  first quartile's (a drift means the log re-reads or re-writes history
  on append).  The in-session overhead -- the ``wal.append.seconds``
  share of a full accounting ingest -- is reported alongside: it is
  microseconds against the engine's milliseconds.
* **recovery is snapshot+tail, not replay-everything**: recovering from
  a compacted WAL (load snapshot, replay empty tail) must be >= 5x
  faster than recovering the same horizon from a never-compacted log
  (replay every window through the full ingestion path).  Both paths are
  bit-identical to the uninterrupted run -- the crash-recovery parity
  suite enforces that; this file measures why compaction cadence
  (``SessionConfig.wal_compact_every``) matters.

Run standalone for the full-scale numbers (horizon 10^4)::

    PYTHONPATH=src python benchmarks/bench_wal.py --users 10000 --steps 10000

or as part of the benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_wal.py -s
"""

import argparse
import os
import statistics
import tempfile
import time

from _harness import emit_json, population
from repro.durability import WriteAheadLog, inspect_wal
from repro.obs import MetricsRegistry
from repro.service import ReleaseSession, ReleaseWindow, SessionConfig

WINDOW = 16
RAW_APPENDS = 4_096
TARGET_RESTORE_SPEEDUP = 5.0  # snapshot+tail vs full-log replay, asserted
# Append-flatness ceiling: last-quartile median / first-quartile median
# over RAW_APPENDS raw appends.  The append is O(record bytes), so the
# true ratio is ~1.0; the ceiling is loose because quartile medians of
# microsecond timings on a contended runner still wobble.
APPEND_FLATNESS_CEILING = 3.0
JSON_PATH = "BENCH_wal.json"


def raw_append_quartiles(appends: int, window: int, fsync: str):
    """Median seconds per raw ``WriteAheadLog.append`` for each quartile
    of ``appends`` identical window records."""
    record = ReleaseWindow.from_snapshots([None] * window)
    with tempfile.TemporaryDirectory() as tmp:
        wal = WriteAheadLog.create(os.path.join(tmp, "wal"), fsync=fsync)
        seconds = []
        for _ in range(appends):
            start = time.perf_counter()
            wal.append(record)
            seconds.append(time.perf_counter() - start)
        wal.close()
    quarter = max(1, len(seconds) // 4)
    return [
        statistics.median(seconds[i : i + quarter])
        for i in range(0, quarter * 4, quarter)
    ]


def run_logged(config: SessionConfig, steps: int, window: int):
    """Drive an accounting-only fleet session with a WAL attached.
    Returns (total ingest seconds, wal.append.seconds snapshot)."""
    session = ReleaseSession(config, registry=MetricsRegistry())
    start = time.perf_counter()
    done = 0
    while done < steps:
        size = min(window, steps - done)
        session.ingest_window(ReleaseWindow.from_snapshots([None] * size))
        done += size
    elapsed = time.perf_counter() - start
    assert session.horizon == steps
    appended = session.summary()["metrics"]["wal.append.seconds"]
    session.close()
    return elapsed, appended


def compare(
    users: int = 10_000,
    cohorts: int = 32,
    steps: int = 10_000,
    epsilon: float = 0.1,
    states: int = 3,
    seed: int = 0,
    window: int = WINDOW,
    fsync: str = "never",
    raw_appends: int = RAW_APPENDS,
) -> dict:
    """Log ``steps`` windows, then recover the horizon twice -- once by
    replaying the whole log, once from a compaction snapshot -- and
    summarise append flatness and the restore speedup."""
    quartiles = raw_append_quartiles(raw_appends, window, fsync)

    pop = population(users, cohorts, states, seed)
    with tempfile.TemporaryDirectory() as tmp:
        config = SessionConfig(
            correlations=pop,
            budgets=epsilon,
            backend="fleet",
            window_size=window,
            wal_dir=os.path.join(tmp, "wal"),
            wal_fsync=fsync,
            seed=seed,
        )
        ingest_seconds, appended = run_logged(config, steps, window)
        logged = inspect_wal(config.wal_dir)

        # Full replay: every window re-ingested through the session path.
        start = time.perf_counter()
        replayed = ReleaseSession.recover(config)
        full_replay_seconds = time.perf_counter() - start
        assert replayed.horizon == steps

        # Fold the whole log into a snapshot, then recover again: load
        # the checkpoint, replay an empty tail.
        start = time.perf_counter()
        replayed.compact_wal()
        compact_seconds = time.perf_counter() - start
        replayed.close()
        compacted = inspect_wal(config.wal_dir)

        start = time.perf_counter()
        restored = ReleaseSession.recover(config)
        snapshot_restore_seconds = time.perf_counter() - start
        assert restored.horizon == steps
        restored.close()

    log_bytes = sum(entry["bytes"] for entry in logged["files"])
    return {
        "users": users,
        "cohorts": cohorts,
        "steps": steps,
        "epsilon": epsilon,
        "window": window,
        "fsync": fsync,
        "cpu_count": os.cpu_count(),
        "target_restore_speedup": TARGET_RESTORE_SPEEDUP,
        "append": {
            "raw_appends": raw_appends,
            "quartile_median_seconds": quartiles,
            "flatness_late_over_early": quartiles[-1]
            / max(quartiles[0], 1e-12),
            "in_session_mean_seconds": appended["mean"],
            "in_session_p99_seconds": appended["p99"],
            "ingest_seconds_total": ingest_seconds,
            "log_bytes": log_bytes,
            "bytes_per_window": log_bytes / max(logged["tail_records"], 1),
        },
        "restore": {
            "full_replay_seconds": full_replay_seconds,
            "replayed_windows": logged["tail_records"],
            "compact_seconds": compact_seconds,
            "snapshot_restore_seconds": snapshot_restore_seconds,
            "snapshot_tail_records": compacted["tail_records"],
            "snapshot_base_records": compacted["base_records"],
            "speedup": full_replay_seconds
            / max(snapshot_restore_seconds, 1e-12),
        },
    }


def format_table(summary: dict) -> str:
    append = summary["append"]
    restore = summary["restore"]
    lines = [
        f"write-ahead log durability -- {summary['users']} users, "
        f"{summary['cohorts']} cohorts, {summary['steps']} steps, "
        f"window={summary['window']}, fsync={summary['fsync']}, "
        f"{summary['cpu_count']} cpu(s)",
        "  raw append (median us by quartile of "
        f"{append['raw_appends']} appends): "
        + "  ".join(
            f"{q * 1e6:.1f}" for q in append["quartile_median_seconds"]
        ),
        f"  append flatness (late/early): "
        f"{append['flatness_late_over_early']:.2f}x "
        f"(ceiling {APPEND_FLATNESS_CEILING:g}x); in-session append "
        f"mean {append['in_session_mean_seconds'] * 1e6:.0f}us, "
        f"{append['bytes_per_window']:.0f} log bytes/window",
        f"  recover, full replay:      {restore['full_replay_seconds']:.3f}s "
        f"({restore['replayed_windows']} windows re-ingested)",
        f"  recover, snapshot + tail:  "
        f"{restore['snapshot_restore_seconds']:.3f}s "
        f"({restore['snapshot_tail_records']} tail record(s); compaction "
        f"itself took {restore['compact_seconds']:.3f}s)",
        f"  restore speedup: {restore['speedup']:.1f}x "
        f"(target >= {TARGET_RESTORE_SPEEDUP:g}x)",
    ]
    return "\n".join(lines)


def test_wal_append_flat_and_restore_speedup(show_table):
    """Harness-scale comparison: the restore floor is asserted
    unconditionally (snapshot loading vs. replaying the whole horizon is
    an algorithmic gap, not a hardware one), append flatness against a
    loose ceiling."""
    summary = compare(users=2_000, cohorts=16, steps=1_024)
    show_table(format_table(summary))
    emit_json(summary, JSON_PATH)
    assert summary["restore"]["speedup"] >= TARGET_RESTORE_SPEEDUP
    assert summary["restore"]["snapshot_tail_records"] == 0
    assert summary["restore"]["replayed_windows"] == 1_024 // WINDOW
    assert (
        summary["append"]["flatness_late_over_early"]
        <= APPEND_FLATNESS_CEILING
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=10_000)
    parser.add_argument("--cohorts", type=int, default=32)
    parser.add_argument("--steps", type=int, default=10_000)
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--states", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--window", type=int, default=WINDOW)
    parser.add_argument(
        "--fsync",
        choices=("always", "never"),
        default="never",
        help="WAL fsync policy while logging (restore is unaffected)",
    )
    parser.add_argument("--raw-appends", type=int, default=RAW_APPENDS)
    parser.add_argument("-o", "--output", default=JSON_PATH)
    args = parser.parse_args()
    summary = compare(
        users=args.users,
        cohorts=args.cohorts,
        steps=args.steps,
        epsilon=args.epsilon,
        states=args.states,
        seed=args.seed,
        window=args.window,
        fsync=args.fsync,
        raw_appends=args.raw_appends,
    )
    print(format_table(summary))
    path = emit_json(summary, args.output)
    print(f"results written to {path}")


if __name__ == "__main__":
    main()
