"""Benchmark-harness configuration.

Every ``bench_*``/``test_*`` function in this directory regenerates one of
the paper's tables or figures (see DESIGN.md's per-experiment index) and
prints the paper-style series, so running::

    pytest benchmarks/ --benchmark-only -s

produces both the timing table and the reproduced numbers.
"""

import pytest


@pytest.fixture
def show_table():
    """Print a reproduction table so it is visible with -s / in captured
    output on failure."""

    def _show(text: str) -> None:
        print()
        print(text)

    return _show
