"""Benchmark + reproduction of Fig. 3 (BPL/FPL/TPL over 10 time points)."""

import numpy as np
import pytest

from repro.experiments import fig3


def test_fig3_leakage_series(benchmark, show_table):
    result = benchmark(fig3.run)
    show_table(fig3.format_table(result))
    # Reproduction claims: the annotated moderate-BPL series and the
    # strong/none extremes.
    assert np.round(result.bpl["moderate"], 2) == pytest.approx(
        fig3.PAPER_MODERATE_BPL
    )
    assert result.bpl["strong"] == pytest.approx(0.1 * np.arange(1, 11))
    assert result.tpl["none"] == pytest.approx(np.full(10, 0.1))
