"""Benchmarks for the extension features (paper Section III-D / VIII).

These go beyond the paper's evaluation but quantify the extensions the
paper explicitly anticipates:

* personalised DP_T vs the uniform min-over-users rule (utility gain for
  weakly correlated users),
* higher-order (lifted) adversaries vs first-order (leakage gap),
* sampled schedules (budget bought per release by skipping points).
"""

import numpy as np
import pytest

from repro.core import (
    allocate_personalized,
    allocate_quantified,
    backward_privacy_leakage,
)
from repro.markov import (
    lift_first_order,
    two_state_matrix,
    uniform_matrix,
)
from repro.mechanisms import max_budget_with_skips


@pytest.fixture(scope="module")
def mixed_population():
    strong = two_state_matrix(0.9, 0.05)
    weak = uniform_matrix(2)
    return {
        "strong": (strong, strong),
        "weak": (weak, weak),
    }


def test_personalized_vs_uniform_allocation(benchmark, show_table, mixed_population):
    result = benchmark(allocate_personalized, mixed_population, 1.0)
    uniform_rule = allocate_quantified(mixed_population, 1.0)
    horizon = 10
    weak_gain = (
        result.epsilons("weak", horizon).sum()
        / uniform_rule.epsilons(horizon).sum()
    )
    show_table(
        "Personalised DP_T (Section III-D): total budget over "
        f"T={horizon}\n"
        f"  uniform rule (min over users): {uniform_rule.epsilons(horizon).sum():.3f}\n"
        f"  personalised, strong user:     {result.epsilons('strong', horizon).sum():.3f}\n"
        f"  personalised, weak user:       {result.epsilons('weak', horizon).sum():.3f}"
        f"  ({weak_gain:.1f}x the uniform rule)"
    )
    assert weak_gain > 1.5
    assert result.satisfies(mixed_population, horizon)


def test_higher_order_adversary_gap(benchmark, show_table):
    base = two_state_matrix(0.8, 0.1)
    lifted = lift_first_order(base, order=2)
    eps = np.full(10, 0.2)

    def leakages():
        return (
            backward_privacy_leakage(base, eps),
            backward_privacy_leakage(lifted, eps),
        )

    first_order, second_order = benchmark(leakages)
    show_table(
        "Order-2 (lifted) adversary vs first-order, eps=0.2 x 10:\n"
        f"  first-order BPL(10):  {first_order[-1]:.4f}\n"
        f"  lifted BPL(10):       {second_order[-1]:.4f} "
        "(conservative history-level bound)"
    )
    assert np.all(second_order >= first_order - 1e-12)


def test_sampling_budget_frontier(benchmark, show_table):
    correlation = two_state_matrix(0.85, 0.1)
    alpha, horizon = 1.0, 12

    def frontier():
        return {
            period: max_budget_with_skips(
                correlation, correlation, alpha, horizon, period
            )
            for period in (1, 2, 3, 6)
        }

    budgets = benchmark(frontier)
    rows = "\n".join(
        f"  period {p}: eps = {e:.4f}" for p, e in budgets.items()
    )
    show_table(
        f"Sampled schedules: max per-release budget at alpha={alpha}, "
        f"T={horizon}\n{rows}"
    )
    values = list(budgets.values())
    assert all(b > a for a, b in zip(values, values[1:]))
