"""Ablation benchmarks for the design choices called out in DESIGN.md.

Three implementation decisions in the quantification core have measurable
cost/benefit trade-offs; these benchmarks quantify each:

1. **Batched vs per-pair Algorithm 1** -- `max_log_ratio` runs all
   n (n-1) ordered row pairs as one vectorised deletion loop instead of a
   Python loop over `solve_pair`.
2. **Loss-function memoisation** -- `TemporalLossFunction` caches
   L(alpha) per alpha; the BPL/FPL recursions with constant budgets hit
   the cache heavily (every step after the first two queries a warm
   alpha during allocation verification).
3. **Closed-form supremum jump vs pure fixed-point iteration** --
   `leakage_supremum` jumps to the Theorem-5 closed form once the
   maximising pair stabilises instead of iterating to the (slow,
   linear-rate) fixed point.
"""

import numpy as np
import pytest

from repro.core import (
    TemporalLossFunction,
    leakage_supremum,
    max_log_ratio,
    solve_pair,
)
from repro.markov import random_stochastic_matrix, two_state_matrix

ABLATION_N = 40


def _per_pair_max_log_ratio(matrix, alpha: float) -> float:
    """The unbatched reference implementation of Eq. (23)/(24)."""
    p = matrix.array
    best = 0.0
    for j in range(matrix.n):
        for k in range(matrix.n):
            if j != k:
                best = max(best, solve_pair(p[j], p[k], alpha).log_value)
    return best


@pytest.fixture(scope="module")
def matrix():
    return random_stochastic_matrix(ABLATION_N, seed=3)


class TestBatchingAblation:
    def test_batched(self, benchmark, matrix):
        benchmark.group = "ablation: all-pairs sweep"
        value = benchmark(max_log_ratio, matrix, 2.0)
        assert value > 0

    def test_per_pair_loop(self, benchmark, matrix):
        benchmark.group = "ablation: all-pairs sweep"
        value = benchmark(_per_pair_max_log_ratio, matrix, 2.0)
        # Correctness is identical; only the constant factor differs.
        assert value == pytest.approx(max_log_ratio(matrix, 2.0), abs=1e-9)


class TestMemoisationAblation:
    BUDGETS = np.full(200, 0.05)

    def test_warm_cache_recursion(self, benchmark, matrix):
        benchmark.group = "ablation: loss-function cache"
        loss = TemporalLossFunction(matrix)  # shared across rounds -> warm

        def run():
            alpha = 0.0
            for eps in self.BUDGETS:
                alpha = loss(alpha) + eps
            return alpha

        assert benchmark(run) > 0

    def test_cold_cache_recursion(self, benchmark, matrix):
        benchmark.group = "ablation: loss-function cache"

        def run():
            loss = TemporalLossFunction(matrix)  # rebuilt -> cold
            alpha = 0.0
            for eps in self.BUDGETS:
                alpha = loss(alpha) + eps
            return alpha

        assert benchmark(run) > 0


class TestSupremumAblation:
    EPSILON = 0.05  # slow contraction: iteration needs many steps

    def test_closed_form_jump(self, benchmark):
        benchmark.group = "ablation: supremum computation"
        m = two_state_matrix(0.9, 0.05)
        value = benchmark(leakage_supremum, m, self.EPSILON)
        assert value > self.EPSILON

    def test_pure_iteration(self, benchmark):
        benchmark.group = "ablation: supremum computation"
        m = two_state_matrix(0.9, 0.05)
        loss = TemporalLossFunction(m)

        def iterate():
            alpha, prev = self.EPSILON, -1.0
            while abs(alpha - prev) > 1e-12:
                prev = alpha
                alpha = loss(alpha) + self.EPSILON
            return alpha

        value = benchmark(iterate)
        assert value == pytest.approx(
            leakage_supremum(m, self.EPSILON), abs=1e-8
        )
