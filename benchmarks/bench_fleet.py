"""FleetAccountant vs. per-user TemporalPrivacyAccountant.

The fleet engine runs one leakage recursion per *cohort* while the scalar
accountant runs one per *user*, so the expected speedup is ~users/cohorts
(the acceptance target is >= 20x at 10^5 users / 100 steps).  Both must
report an identical fleet-wide maximum TPL.

Two facts keep the comparison honest at population scale:

* max-TPL does not depend on how *many* users share a cohort -- only on
  which cohorts exist -- so the baseline is run with a small number of
  users per cohort and still produces the exact full-population answer.
* the baseline's cost is linear in the user count (every user is an
  independent ``_UserState``), so its full-population runtime is the
  *slope* of its measured runtime in the user count, times the target
  population.  Using the slope of two measured sizes cancels the
  per-release fixed overhead, which is conservative (it favours the
  baseline).

Run standalone for the full-scale numbers::

    PYTHONPATH=src python benchmarks/bench_fleet.py --users 100000 --steps 100

or as part of the benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py -s
"""

import argparse
import time

from _harness import cohort_models, emit_json
from repro.core import TemporalPrivacyAccountant
from repro.fleet import FleetAccountant

PARITY_ATOL = 1e-9
TARGET_SPEEDUP = 20.0
JSON_PATH = "BENCH_fleet.json"


def _assign(models, n_users: int):
    return {u: (models[u % len(models)], models[u % len(models)]) for u in range(n_users)}


def run_fleet(models, n_users: int, steps: int, epsilon: float):
    """Time registration + accounting on the fleet engine."""
    fleet = FleetAccountant(_assign(models, n_users))
    start = time.perf_counter()
    worst = 0.0
    for _ in range(steps):
        worst = fleet.add_release(epsilon)
    return worst, time.perf_counter() - start


def run_baseline(models, n_users: int, steps: int, epsilon: float):
    """Time the per-user accountant on ``n_users`` users."""
    acct = TemporalPrivacyAccountant(_assign(models, n_users))
    start = time.perf_counter()
    worst = 0.0
    for _ in range(steps):
        worst = acct.add_release(epsilon)
    return worst, time.perf_counter() - start


def compare(
    users: int = 100_000,
    cohorts: int = 8,
    steps: int = 100,
    epsilon: float = 0.1,
    states: int = 3,
    seed: int = 0,
    baseline_users: int = 0,
    exact_baseline: bool = False,
) -> dict:
    """Run both engines and return the comparison summary."""
    models = cohort_models(cohorts, states, seed)
    fleet_tpl, fleet_seconds = run_fleet(models, users, steps, epsilon)

    if exact_baseline:
        baseline_tpl, baseline_seconds = run_baseline(models, users, steps, epsilon)
        estimated = False
    else:
        # Slope-based linear extrapolation: run k and 2k users (>= 1 user
        # per cohort so max-TPL is exact), estimate the per-user cost.
        k = baseline_users if baseline_users > 0 else cohorts
        baseline_tpl, t_small = run_baseline(models, k, steps, epsilon)
        _, t_large = run_baseline(models, 2 * k, steps, epsilon)
        per_user = max(t_large - t_small, 1e-12) / k
        baseline_seconds = per_user * users
        estimated = True

    return {
        "users": users,
        "cohorts": cohorts,
        "steps": steps,
        "epsilon": epsilon,
        "fleet_tpl": fleet_tpl,
        "baseline_tpl": baseline_tpl,
        "tpl_gap": abs(fleet_tpl - baseline_tpl),
        "fleet_seconds": fleet_seconds,
        "baseline_seconds": baseline_seconds,
        "baseline_estimated": estimated,
        "speedup": baseline_seconds / max(fleet_seconds, 1e-12),
    }


def format_table(result: dict) -> str:
    estimated = " (extrapolated)" if result["baseline_estimated"] else ""
    return "\n".join(
        [
            f"fleet vs per-user accounting -- {result['users']} users, "
            f"{result['cohorts']} cohorts, {result['steps']} steps, "
            f"eps={result['epsilon']:g}",
            f"  max TPL     fleet {result['fleet_tpl']:.12f}   "
            f"baseline {result['baseline_tpl']:.12f}   "
            f"gap {result['tpl_gap']:.2e}",
            f"  runtime     fleet {result['fleet_seconds']:.3f}s   "
            f"baseline {result['baseline_seconds']:.3f}s{estimated}",
            f"  speedup     {result['speedup']:.1f}x "
            f"(target >= {TARGET_SPEEDUP:g}x)",
        ]
    )


def test_fleet_speedup_and_parity(show_table):
    """Harness-scale comparison: smaller population, same acceptance
    thresholds (>= 20x and identical max-TPL to 1e-9)."""
    result = compare(users=20_000, cohorts=4, steps=30)
    show_table(format_table(result))
    emit_json(result, JSON_PATH)
    assert result["tpl_gap"] <= PARITY_ATOL
    assert result["speedup"] >= TARGET_SPEEDUP


def test_fleet_exact_small_population(show_table):
    """Sanity: with a small *exact* (non-extrapolated) baseline the two
    engines agree and the fleet engine is still faster."""
    result = compare(users=300, cohorts=3, steps=25, exact_baseline=True)
    show_table(format_table(result))
    assert result["tpl_gap"] <= PARITY_ATOL
    assert result["speedup"] >= TARGET_SPEEDUP


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=100_000)
    parser.add_argument("--cohorts", type=int, default=8)
    parser.add_argument("--steps", type=int, default=100)
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--states", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--baseline-users",
        type=int,
        default=0,
        help="users for the baseline slope measurement (default: one per cohort)",
    )
    parser.add_argument(
        "--exact-baseline",
        action="store_true",
        help="run the per-user baseline on the full population (slow!)",
    )
    parser.add_argument("-o", "--output", default=JSON_PATH)
    args = parser.parse_args()
    result = compare(
        users=args.users,
        cohorts=args.cohorts,
        steps=args.steps,
        epsilon=args.epsilon,
        states=args.states,
        seed=args.seed,
        baseline_users=args.baseline_users,
        exact_baseline=args.exact_baseline,
    )
    print(format_table(result))
    path = emit_json(result, args.output)
    print(f"results written to {path}")


if __name__ == "__main__":
    main()
