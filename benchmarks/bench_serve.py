"""Serve-path latency smoke: ``repro loadgen --smoke`` as a benchmark.

The fleet/window/shard benchmarks measure accounting *throughput*; this
one measures the serving path's *latency distribution* under an open-loop
arrival process (:mod:`repro.obs.loadgen`): p50/p99/p999 ingest latency,
offered vs. achieved rate, queue high-water marks and backpressure
stalls, emitted to ``BENCH_serve.json``.

Gating is deliberately minimal -- the run must complete every request
without errors and produce non-empty percentiles.  Latency *floors* are
reported but not asserted: wall-clock latency on a contended CI runner
is noise, while "the loadgen can no longer drive the session at all" is
a real regression.

Run standalone (full knob set)::

    PYTHONPATH=src python -m repro.cli loadgen --users 200 --rate 1000

or as part of the benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -s
"""

import json
import subprocess
import sys

JSON_PATH = "BENCH_serve.json"


def test_loadgen_smoke_completes_with_percentiles(show_table):
    """Drive the CI preset through the real CLI entry point and gate on
    completion + non-empty latency percentiles (exactly what the CLI's
    own exit status enforces, re-asserted here on the emitted JSON)."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "loadgen", "--smoke", "-o", JSON_PATH],
        capture_output=True,
        text=True,
        timeout=300,
    )
    show_table(result.stdout.rstrip())
    assert result.returncode == 0, result.stderr

    with open(JSON_PATH, encoding="utf-8") as handle:
        report = json.load(handle)
    assert report["completed"] == report["count"] > 0
    assert report["errors"] == 0
    latency = report["latency_ms"]
    for quantile in ("p50", "p99", "p999"):
        assert latency[quantile] is not None
        assert latency[quantile] > 0.0
    assert report["offered_rate"] > 0
    assert report["achieved_rate"] > 0
    assert report["queue"]["high_watermark"] >= 1
    assert report["environment"]["python"]
