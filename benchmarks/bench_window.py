"""Windowed vs. per-event ingestion throughput on the fleet backend.

Per-event ingestion pays one full backend entry -- and one O(T) FPL
recomputation per cohort -- per time point.  Windowed ingestion
(:meth:`ReleaseSession.ingest_window`) applies a whole window per entry
and advances all window prefixes through one batched backward sweep per
cohort, so the Python round-trips drop from O(window x T) to
O(T + window).  The numbers must not move at all: every window size
produces the same events and a bit-identical max TPL (the windowed parity
suite enforces the same property-based).

The acceptance bar: >= 5x events/sec at window=64 vs window=1 on the
fleet backend at 10^4 users.  Results are emitted to ``BENCH_window.json``.

Run standalone for the full-scale numbers::

    PYTHONPATH=src python benchmarks/bench_window.py --users 10000 --steps 256

or as part of the benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_window.py -s
"""

import argparse
import time

from _harness import emit_json, population
from repro.service import ReleaseSession, ReleaseWindow, SessionConfig

WINDOW_SIZES = (1, 8, 64, 256)
TARGET_SPEEDUP = 5.0
JSON_PATH = "BENCH_window.json"


def run_windowed(population, steps: int, epsilon: float, window: int):
    """Time an accounting-only fleet session ingesting ``steps`` time
    points in windows of ``window`` (1 = the per-event path)."""
    session = ReleaseSession(
        SessionConfig(
            correlations=population,
            budgets=epsilon,
            backend="fleet",
            window_size=window,
        )
    )
    start = time.perf_counter()
    if window == 1:
        for _ in range(steps):
            session.ingest()
        elapsed = time.perf_counter() - start
    else:
        done = 0
        while done < steps:
            size = min(window, steps - done)
            session.ingest_window(ReleaseWindow.from_snapshots([None] * size))
            done += size
        elapsed = time.perf_counter() - start
    assert session.horizon == steps
    return session.max_tpl(), elapsed


def compare(
    users: int = 10_000,
    cohorts: int = 8,
    steps: int = 256,
    epsilon: float = 0.1,
    states: int = 3,
    seed: int = 0,
    windows=WINDOW_SIZES,
) -> dict:
    """Run every window size over the same stream and summarise."""
    pop = population(users, cohorts, states, seed)
    rows = []
    baseline_tpl = None
    baseline_rate = None
    for window in windows:
        tpl, elapsed = run_windowed(pop, steps, epsilon, window)
        rate = steps / max(elapsed, 1e-12)
        if window == 1:
            baseline_tpl, baseline_rate = tpl, rate
        rows.append(
            {
                "window": window,
                "max_tpl": tpl,
                "seconds": elapsed,
                "events_per_second": rate,
                "user_steps_per_second": rate * users,
                "tpl_gap_vs_window1": (
                    0.0 if baseline_tpl is None else abs(tpl - baseline_tpl)
                ),
                "speedup_vs_window1": (
                    1.0 if baseline_rate is None else rate / baseline_rate
                ),
            }
        )
    return {
        "users": users,
        "cohorts": cohorts,
        "steps": steps,
        "epsilon": epsilon,
        "target_speedup_at_64": TARGET_SPEEDUP,
        "results": rows,
    }


def format_table(summary: dict) -> str:
    lines = [
        f"windowed vs per-event ingestion -- {summary['users']} users, "
        f"{summary['cohorts']} cohorts, {summary['steps']} steps, "
        f"eps={summary['epsilon']:g} (fleet backend)",
        "  window   events/s      speedup   max-TPL gap vs window=1",
    ]
    for row in summary["results"]:
        lines.append(
            f"  {row['window']:<8d} {row['events_per_second']:<13,.1f} "
            f"{row['speedup_vs_window1']:<9.2f} {row['tpl_gap_vs_window1']:.2e}"
        )
    lines.append(
        f"  target: >= {TARGET_SPEEDUP:g}x at window=64, bit-identical TPL"
    )
    return "\n".join(lines)


def _row(summary: dict, window: int) -> dict:
    return next(r for r in summary["results"] if r["window"] == window)


def test_window_speedup_and_parity(show_table):
    """Harness-scale comparison: smaller population, same acceptance
    thresholds (>= 5x at window=64, bit-identical max TPL everywhere)."""
    summary = compare(users=2_000, cohorts=8, steps=192, windows=(1, 8, 64))
    show_table(format_table(summary))
    emit_json(summary, JSON_PATH)
    for row in summary["results"]:
        assert row["tpl_gap_vs_window1"] == 0.0
    assert _row(summary, 64)["speedup_vs_window1"] >= TARGET_SPEEDUP


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=10_000)
    parser.add_argument("--cohorts", type=int, default=8)
    parser.add_argument("--steps", type=int, default=256)
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--states", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--windows",
        type=int,
        nargs="+",
        default=list(WINDOW_SIZES),
        help="window sizes to compare (the first is the baseline)",
    )
    parser.add_argument("-o", "--output", default=JSON_PATH)
    args = parser.parse_args()
    summary = compare(
        users=args.users,
        cohorts=args.cohorts,
        steps=args.steps,
        epsilon=args.epsilon,
        states=args.states,
        seed=args.seed,
        windows=tuple(args.windows),
    )
    print(format_table(summary))
    path = emit_json(summary, args.output)
    print(f"results written to {path}")


if __name__ == "__main__":
    main()
