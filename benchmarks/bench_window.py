"""Windowed vs. per-event ingestion throughput on the fleet backend.

Per-event ingestion pays one full backend entry -- and one O(T) FPL
recomputation per cohort -- per time point.  Windowed ingestion
(:meth:`ReleaseSession.ingest_window`) applies a whole window per entry
and advances all window prefixes through one batched backward sweep per
cohort, so the Python round-trips drop from O(window x T) to
O(T + window).  The numbers must not move at all: every window size
produces the same events and a bit-identical max TPL (the windowed parity
suite enforces the same property-based).

The acceptance bar: >= 5x events/sec at window=64 vs window=1 on the
fleet backend at 10^4 users.  Results are emitted to ``BENCH_window.json``.

Run standalone for the full-scale numbers::

    PYTHONPATH=src python benchmarks/bench_window.py --users 10000 --steps 256

or as part of the benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_window.py -s
"""

import argparse
import json
import os
import time
import warnings

import numpy as np

from _harness import emit_json, population
from repro.fleet import FleetAccountant
from repro.service import ReleaseSession, ReleaseWindow, SessionConfig

WINDOW_SIZES = (1, 8, 64, 256)
TARGET_SPEEDUP = 5.0
CROSS_COHORT_TARGET = 3.0
CLAMP_PROBE_TARGET = 2.0
JSON_PATH = "BENCH_window.json"


def emit_stage(stage: str, summary: dict, path: str = JSON_PATH) -> str:
    """Merge ``summary`` into ``path`` under ``stages[stage]`` so the
    three stages of this benchmark accumulate into one JSON file
    regardless of which test ran first."""
    merged = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as handle:
                merged = json.load(handle)
        except (OSError, ValueError):
            merged = {}
    stages = merged.setdefault("stages", {})
    stages[stage] = summary
    return emit_json(merged, path)


def run_windowed(population, steps: int, epsilon: float, window: int):
    """Time an accounting-only fleet session ingesting ``steps`` time
    points in windows of ``window`` (1 = the per-event path)."""
    session = ReleaseSession(
        SessionConfig(
            correlations=population,
            budgets=epsilon,
            backend="fleet",
            window_size=window,
        )
    )
    start = time.perf_counter()
    if window == 1:
        for _ in range(steps):
            session.ingest()
        elapsed = time.perf_counter() - start
    else:
        done = 0
        while done < steps:
            size = min(window, steps - done)
            session.ingest_window(ReleaseWindow.from_snapshots([None] * size))
            done += size
        elapsed = time.perf_counter() - start
    assert session.horizon == steps
    return session.max_tpl(), elapsed


def compare(
    users: int = 10_000,
    cohorts: int = 8,
    steps: int = 256,
    epsilon: float = 0.1,
    states: int = 3,
    seed: int = 0,
    windows=WINDOW_SIZES,
) -> dict:
    """Run every window size over the same stream and summarise."""
    pop = population(users, cohorts, states, seed)
    rows = []
    baseline_tpl = None
    baseline_rate = None
    for window in windows:
        tpl, elapsed = run_windowed(pop, steps, epsilon, window)
        rate = steps / max(elapsed, 1e-12)
        if window == 1:
            baseline_tpl, baseline_rate = tpl, rate
        rows.append(
            {
                "window": window,
                "max_tpl": tpl,
                "seconds": elapsed,
                "events_per_second": rate,
                "user_steps_per_second": rate * users,
                "tpl_gap_vs_window1": (
                    0.0 if baseline_tpl is None else abs(tpl - baseline_tpl)
                ),
                "speedup_vs_window1": (
                    1.0 if baseline_rate is None else rate / baseline_rate
                ),
            }
        )
    return {
        "users": users,
        "cohorts": cohorts,
        "steps": steps,
        "epsilon": epsilon,
        "target_speedup_at_64": TARGET_SPEEDUP,
        "results": rows,
    }


def format_table(summary: dict) -> str:
    lines = [
        f"windowed vs per-event ingestion -- {summary['users']} users, "
        f"{summary['cohorts']} cohorts, {summary['steps']} steps, "
        f"eps={summary['epsilon']:g} (fleet backend)",
        "  window   events/s      speedup   max-TPL gap vs window=1",
    ]
    for row in summary["results"]:
        lines.append(
            f"  {row['window']:<8d} {row['events_per_second']:<13,.1f} "
            f"{row['speedup_vs_window1']:<9.2f} {row['tpl_gap_vs_window1']:.2e}"
        )
    lines.append(
        f"  target: >= {TARGET_SPEEDUP:g}x at window=64, bit-identical TPL"
    )
    return "\n".join(lines)


def _row(summary: dict, window: int) -> dict:
    return next(r for r in summary["results"] if r["window"] == window)


def test_window_speedup_and_parity(show_table):
    """Harness-scale comparison: smaller population, same acceptance
    thresholds (>= 5x at window=64, bit-identical max TPL everywhere)."""
    summary = compare(users=2_000, cohorts=8, steps=192, windows=(1, 8, 64))
    show_table(format_table(summary))
    emit_stage("windowed_ingestion", summary)
    for row in summary["results"]:
        assert row["tpl_gap_vs_window1"] == 0.0
    assert _row(summary, 64)["speedup_vs_window1"] >= TARGET_SPEEDUP


# ---------------------------------------------------------------------------
# Stage 2: cross-cohort batching -- digest-batched sweep vs per-cohort loop
# ---------------------------------------------------------------------------
def run_cross_cohort(pop, budgets, cross_cohort: bool):
    """Time one windowed ingestion on a fresh engine with the
    cross-cohort fusion toggled; returns (per-step worsts, seconds)."""
    fleet = FleetAccountant(pop)
    fleet.cross_cohort = cross_cohort
    start = time.perf_counter()
    worsts = fleet.add_window(budgets)
    return worsts, time.perf_counter() - start


def compare_cross_cohort(
    users: int = 512, cohorts: int = 256, states: int = 2, steps: int = 16,
    seed: int = 0,
) -> dict:
    """Many small distinct-digest cohorts: the per-cohort loop pays one
    solver entry per cohort per sweep step, the fused path one stacked
    entry per sweep step.  Same floats either way."""
    pop = population(users, cohorts, states, seed)
    budgets = [0.1 + 0.01 * (i % 5) for i in range(steps)]
    run_cross_cohort(pop, budgets[:2], True)  # warm-up: imports, allocators
    fused, fused_s = run_cross_cohort(pop, budgets, True)
    serial, serial_s = run_cross_cohort(pop, budgets, False)
    return {
        "users": users,
        "cohorts": cohorts,
        "states": states,
        "steps": steps,
        "fused_seconds": fused_s,
        "serial_seconds": serial_s,
        "speedup": serial_s / max(fused_s, 1e-12),
        "bit_identical": bool(np.array_equal(fused, serial)),
        "target_speedup": CROSS_COHORT_TARGET,
    }


def format_cross_cohort(summary: dict) -> str:
    return (
        f"cross-cohort batched sweep vs per-cohort loop -- "
        f"{summary['users']} users, {summary['cohorts']} cohorts, "
        f"{summary['states']} states, window={summary['steps']}\n"
        f"  fused {summary['fused_seconds']:.3f}s   "
        f"serial {summary['serial_seconds']:.3f}s   "
        f"speedup {summary['speedup']:.2f}x "
        f"(target >= {summary['target_speedup']:g}x, bit-identical "
        f"{summary['bit_identical']})"
    )


def test_cross_cohort_speedup_and_parity(show_table):
    summary = compare_cross_cohort()
    show_table(format_cross_cohort(summary))
    emit_stage("cross_cohort", summary)
    assert summary["bit_identical"]
    assert summary["speedup"] >= CROSS_COHORT_TARGET


# ---------------------------------------------------------------------------
# Stage 3: alpha clamping -- batched dyadic probe tree vs serial bisection
# ---------------------------------------------------------------------------
def run_clamped(pop, budgets, alpha: float, batched: bool):
    """Time a clamp-heavy stream; returns (events, seconds)."""
    session = ReleaseSession(
        SessionConfig(
            correlations=pop,
            budgets=0.1,  # overridden per ingest
            alpha=alpha,
            alpha_mode="clamp",
            backend="fleet",
        )
    )
    session._clamp_batched = batched
    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for epsilon in budgets:
            session.ingest(epsilon=epsilon)
    elapsed = time.perf_counter() - start
    return session.events, elapsed


def compare_clamp_probe(
    users: int = 256, cohorts: int = 64, states: int = 2, steps: int = 12,
    alpha: float = 0.8, seed: int = 0,
) -> dict:
    """Every step requests more budget than alpha admits, so every step
    runs the full clamp bisection: ~20 backend probe entries serially,
    ~5 batched ``probe_scales`` round-trips.  (After the first step
    clamps to the budget boundary the rest reject -- but a rejection in
    clamp mode is decided by the same full bisection, so every step
    measures the probe loop.)"""
    pop = population(users, cohorts, states, seed)
    budgets = [0.5 + 0.05 * (i % 4) for i in range(steps)]
    run_clamped(pop, budgets[:1], alpha, True)  # warm-up
    batched_events, batched_s = run_clamped(pop, budgets, alpha, True)
    serial_events, serial_s = run_clamped(pop, budgets, alpha, False)
    identical = len(batched_events) == len(serial_events) and all(
        a.payload() == b.payload()
        for a, b in zip(batched_events, serial_events)
    )
    clamped = sum(1 for e in batched_events if e.status == "clamped")
    return {
        "users": users,
        "cohorts": cohorts,
        "states": states,
        "steps": steps,
        "alpha": alpha,
        "clamped_steps": clamped,
        "probed_steps": sum(
            1
            for e in batched_events
            if e.status in ("clamped", "rejected")
        ),
        "batched_seconds": batched_s,
        "serial_seconds": serial_s,
        "speedup": serial_s / max(batched_s, 1e-12),
        "events_identical": bool(identical),
        "target_speedup": CLAMP_PROBE_TARGET,
    }


def format_clamp_probe(summary: dict) -> str:
    return (
        f"batched vs serial clamp probing -- {summary['users']} users, "
        f"{summary['cohorts']} cohorts, {summary['steps']} steps "
        f"({summary['clamped_steps']} clamped), alpha={summary['alpha']:g}\n"
        f"  batched {summary['batched_seconds']:.3f}s   "
        f"serial {summary['serial_seconds']:.3f}s   "
        f"speedup {summary['speedup']:.2f}x "
        f"(target >= {summary['target_speedup']:g}x, events identical "
        f"{summary['events_identical']})"
    )


def test_clamp_probe_speedup_and_parity(show_table):
    summary = compare_clamp_probe()
    show_table(format_clamp_probe(summary))
    emit_stage("clamp_probe", summary)
    assert summary["clamped_steps"] >= 1
    # The first request fits outright; every later one runs a full
    # clamp bisection (clamped or rejected), which is what we time.
    assert summary["probed_steps"] >= summary["steps"] - 1
    assert summary["events_identical"]
    assert summary["speedup"] >= CLAMP_PROBE_TARGET


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=10_000)
    parser.add_argument("--cohorts", type=int, default=8)
    parser.add_argument("--steps", type=int, default=256)
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--states", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--windows",
        type=int,
        nargs="+",
        default=list(WINDOW_SIZES),
        help="window sizes to compare (the first is the baseline)",
    )
    parser.add_argument("-o", "--output", default=JSON_PATH)
    args = parser.parse_args()
    summary = compare(
        users=args.users,
        cohorts=args.cohorts,
        steps=args.steps,
        epsilon=args.epsilon,
        states=args.states,
        seed=args.seed,
        windows=tuple(args.windows),
    )
    print(format_table(summary))
    emit_stage("windowed_ingestion", summary, args.output)
    cross = compare_cross_cohort()
    print(format_cross_cohort(cross))
    emit_stage("cross_cohort", cross, args.output)
    clamp = compare_clamp_probe()
    print(format_clamp_probe(clamp))
    path = emit_stage("clamp_probe", clamp, args.output)
    print(f"results written to {path}")


if __name__ == "__main__":
    main()
