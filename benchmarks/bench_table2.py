"""Benchmark + reproduction of Table II (guarantees at three levels)."""

import pytest

from repro.experiments import table2


def test_table2_guarantees(benchmark, show_table):
    result = benchmark(table2.run, epsilon=0.1, horizon=10, w=3)
    show_table(table2.format_table(result))
    event, w_event, user = result.rows
    # Independent column: eps / w eps / T eps (Theorem 3).
    assert event.independent == pytest.approx(0.1)
    assert w_event.independent == pytest.approx(0.3)
    assert user.independent == pytest.approx(1.0)
    # Correlated column: event-level degrades, user-level does not
    # (Corollary 1), w-event sits in between.
    assert event.correlated > event.independent
    assert user.degradation == pytest.approx(1.0)
    assert event.correlated <= w_event.correlated <= user.correlated + 1e-12
