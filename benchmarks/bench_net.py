"""Socket vs. pipe shard RPC overhead, and serve-over-TCP throughput.

Two questions the network tier must answer with numbers:

1. **What does the framed socket transport cost per window?**  The
   coordinator exchanges the same RPC with each shard either over a
   multiprocessing pipe or a length-prefixed CRC-checked TCP frame
   (:mod:`repro.net.frames`).  Both carry pickled payloads; the socket
   adds checksumming and kernel TCP on top of the pipe's plain
   byte channel.  The accounting answers must not move at all -- the
   max-TPL gap is asserted to be exactly zero -- and the socket path
   must stay within a sane factor of pipe throughput (the parity suite
   enforces bit-identity property-based; this file puts a floor under
   the cost).

2. **How many requests/sec does the TCP front door serve?**  An
   in-process :class:`~repro.net.server.ReproServer` is driven by the
   loadgen TCP client at window=64 and must complete every request with
   non-empty latency percentiles.

Run standalone for full-scale numbers::

    PYTHONPATH=src python benchmarks/bench_net.py --users 20000 --steps 256

or as part of the benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_net.py -s
"""

import argparse
import asyncio
import json
import os
import threading
import time

from _harness import emit_json, population
from repro.net.server import ReproServer
from repro.obs.loadgen import run_loadgen
from repro.service import ReleaseSession, ReleaseWindow, SessionConfig

WINDOW = 64
SHARDS = 2
# The socket transport re-buys the pipe's work plus CRC + TCP; at
# harness scale (tiny windows, loopback) the floor is deliberately
# loose -- it catches a transport that collapsed (accidental
# per-byte writes, sync handshakes per op), not honest overhead.
CI_MIN_SOCKET_RATIO = 0.2
# The serve stage: executor-offloaded lanes + cross-request window
# coalescing vs. the per-request inline baseline, same wire traffic.
# The speedup floor is the PR's acceptance bar; the stall ceiling
# proves the loop stayed free for I/O while accounting computed.
CI_MIN_SERVE_SPEEDUP = 2.0
CI_MAX_STALL_MS = 50.0
SERVE_CONNECTIONS = 8
JSON_PATH = "BENCH_net.json"


def run_transport(population, steps, epsilon, window, transport):
    """Time a sharded accounting session on one shard transport."""
    session = ReleaseSession(
        SessionConfig(
            correlations=population,
            budgets=epsilon,
            backend="fleet",
            shards=SHARDS,
            shard_transport=transport,
            window_size=window,
        )
    )
    try:
        start = time.perf_counter()
        done = 0
        while done < steps:
            size = min(window, steps - done)
            session.ingest_window(ReleaseWindow.from_snapshots([None] * size))
            done += size
        elapsed = time.perf_counter() - start
        assert session.horizon == steps
        return session.max_tpl(), elapsed
    finally:
        session.close()


def _serve_config(users, window, seed, **overrides):
    from repro.markov import two_state_matrix

    matrix = two_state_matrix(0.8, 0.1)
    # Fleet backend: the coalescing win comes from vectorised
    # ``add_window`` sweeps -- the scalar backend loops per step either
    # way, so it cannot show the amortisation this stage measures.
    base = dict(
        correlations={u: (matrix, matrix) for u in range(users)},
        budgets=0.1,
        backend="fleet",
        window_size=window,
        queue_maxsize=2 * window,
        seed=seed,
    )
    base.update(overrides)
    return SessionConfig(**base)


class _ServerHarness:
    """A ReproServer on a background thread's event loop, so the
    foreground loop stays free for client driving (``run_loadgen`` owns
    it)."""

    def __init__(self, config):
        self.server = ReproServer(config)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self._thread.start()

    def on_loop(self, coroutine, timeout=120):
        return asyncio.run_coroutine_threadsafe(coroutine, self.loop).result(
            timeout
        )

    def start(self):
        return self.on_loop(self.server.start("127.0.0.1", 0))

    def max_stall_seconds(self) -> float:
        async def read():
            series = self.server._registry.timeseries(
                "serve.loop.stall.seconds"
            )
            return series.high_watermark

        return self.on_loop(read())

    def session_tpl(self, session_id="default") -> float:
        async def read():
            return self.server.sessions[session_id].max_tpl()

        return self.on_loop(read())

    def stop(self):
        try:
            self.on_loop(self.server.stop())
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout=10)
            self.loop.close()


def serve_throughput(users, count, window, rate, seed):
    """Requests/sec through a real ReproServer on loopback, driven by
    the loadgen TCP client."""
    harness = _ServerHarness(_serve_config(users, window, seed))
    try:
        host, port = harness.start()
        report = run_loadgen(
            users=users,
            rate=rate,
            count=count,
            window=window,
            queue_size=2 * window,
            seed=seed,
            target="connect",
            address=f"{host}:{port}",
        )
    finally:
        harness.stop()
    return report


async def _parity_drive(host, port, lines):
    """One connection, every line written up front: a single-connection
    drive is deterministic in t-assignment (request tasks enter the
    session queue in line order), so responses compare positionally
    against a serial in-process reference."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"".join(lines))
    await writer.drain()
    writer.write_eof()
    out = []
    while len(out) < len(lines):
        raw = await asyncio.wait_for(reader.readline(), timeout=60)
        if not raw:
            break
        out.append(json.loads(raw))
    writer.close()
    return out


def serve_stage(users, count, window, rate, seed, connections=SERVE_CONNECTIONS):
    """Coalesced + offloaded serve vs. the per-request inline baseline.

    Each variant gets (1) a deterministic single-connection parity drive
    whose per-seq payloads and final TPL are compared bit-for-bit
    against a serial in-process session, and (2) an open-loop loadgen
    run over ``connections`` concurrent TCP connections for the
    throughput number.  Fresh server (fresh budgets) per drive.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    parity_count = min(count, 64)
    snapshots = rng.integers(0, 2, size=(parity_count, users))
    lines = [
        json.dumps({"snapshot": s.tolist(), "seq": i}).encode() + b"\n"
        for i, s in enumerate(snapshots)
    ]
    reference = ReleaseSession(_serve_config(users, window, seed))
    try:
        expected = [reference.ingest(s).payload() for s in snapshots]
        expected_tpl = reference.max_tpl()
    finally:
        reference.close()

    variants = {
        # The pre-offload serve path: drain on the event loop, one
        # add_window per request.
        "baseline": dict(queue_offload=False, window_size=1),
        # The PR's hot path: session-lane offload + window coalescing.
        "coalesced": dict(queue_offload=True),
    }
    stage = {
        "window": window,
        "connections": connections,
        "count": count,
        "parity_requests": parity_count,
        "offered_rate": rate,
    }
    for label, overrides in variants.items():
        harness = _ServerHarness(_serve_config(users, window, seed, **overrides))
        try:
            host, port = harness.start()
            responses = asyncio.run(_parity_drive(host, port, lines))
            by_seq = {line.get("seq"): line for line in responses}
            mismatches = 0
            for i, want in enumerate(expected):
                got = dict(by_seq.get(i) or {})
                got.pop("seq", None)
                got.pop("elapsed_ms", None)
                if got != want:
                    mismatches += 1
            tpl_gap = abs(harness.session_tpl() - expected_tpl)
        finally:
            harness.stop()

        harness = _ServerHarness(_serve_config(users, window, seed, **overrides))
        try:
            host, port = harness.start()
            report = run_loadgen(
                users=users,
                rate=rate,
                count=count,
                window=window,
                queue_size=2 * window,
                seed=seed,
                target="connect",
                address=f"{host}:{port}",
                connections=connections,
            )
            max_stall_ms = harness.max_stall_seconds() * 1000.0
        finally:
            harness.stop()
        stage[label] = {
            "requests_per_second": report["achieved_rate"],
            "completed": report["completed"],
            "errors": report["errors"],
            "latency_ms": report["latency_ms"],
            "per_connection": report["per_connection"],
            "max_stall_ms": max_stall_ms,
            "payload_mismatches": mismatches,
            "tpl_gap": tpl_gap,
        }
    stage["speedup"] = stage["coalesced"]["requests_per_second"] / max(
        stage["baseline"]["requests_per_second"], 1e-12
    )
    stage["floor"] = CI_MIN_SERVE_SPEEDUP
    stage["max_stall_ms_limit"] = CI_MAX_STALL_MS
    return stage


def compare(
    users: int = 20_000,
    cohorts: int = 16,
    steps: int = 256,
    epsilon: float = 0.1,
    states: int = 3,
    seed: int = 0,
    window: int = WINDOW,
    serve_count: int = 200,
    serve_users: int = 50,
    serve_rate: float = 2000.0,
) -> dict:
    """Both transports over the same stream, plus a serve run."""
    pop = population(users, cohorts, states, seed)
    rows = []
    baseline_tpl = None
    baseline_rate = None
    for transport in ("pipe", "socket"):
        tpl, elapsed = run_transport(pop, steps, epsilon, window, transport)
        rate = steps / max(elapsed, 1e-12)
        if baseline_tpl is None:
            baseline_tpl, baseline_rate = tpl, rate
        rows.append(
            {
                "transport": transport,
                "max_tpl": tpl,
                "seconds": elapsed,
                "events_per_second": rate,
                "windows_per_second": rate / window,
                "tpl_gap_vs_pipe": abs(tpl - baseline_tpl),
                "throughput_ratio_vs_pipe": rate / baseline_rate,
            }
        )
    serve = serve_throughput(
        serve_users, serve_count, window, serve_rate, seed
    )
    stages = {
        "serve_throughput": serve_stage(
            serve_users, serve_count, window, serve_rate, seed
        )
    }
    return {
        "users": users,
        "cohorts": cohorts,
        "steps": steps,
        "epsilon": epsilon,
        "window": window,
        "shards": SHARDS,
        "cpu_count": os.cpu_count(),
        "min_socket_ratio": CI_MIN_SOCKET_RATIO,
        "min_serve_speedup": CI_MIN_SERVE_SPEEDUP,
        "results": rows,
        "serve": {
            "users": serve_users,
            "count": serve_count,
            "window": window,
            "offered_rate": serve_rate,
            "completed": serve["completed"],
            "errors": serve["errors"],
            "requests_per_second": serve["achieved_rate"],
            "latency_ms": serve["latency_ms"],
        },
        "stages": stages,
    }


def format_table(summary: dict) -> str:
    lines = [
        f"socket vs pipe shard RPC -- {summary['users']} users, "
        f"{summary['shards']} shards, {summary['steps']} steps, "
        f"window={summary['window']}, {summary['cpu_count']} cpu(s)",
        "  transport  events/s      ratio vs pipe   max-TPL gap",
    ]
    for row in summary["results"]:
        lines.append(
            f"  {row['transport']:<10s} {row['events_per_second']:<13,.1f} "
            f"{row['throughput_ratio_vs_pipe']:<15.2f} "
            f"{row['tpl_gap_vs_pipe']:.2e}"
        )
    serve = summary["serve"]
    lat = serve["latency_ms"]
    p50 = lat.get("p50")
    p99 = lat.get("p99")
    lines.append(
        f"  serve over TCP: {serve['requests_per_second']:,.1f} req/s "
        f"({serve['completed']}/{serve['count']} completed, "
        f"p50 {p50:.1f} ms, p99 {p99:.1f} ms)"
        if p50 is not None and p99 is not None
        else "  serve over TCP: no completed requests"
    )
    stage = summary.get("stages", {}).get("serve_throughput")
    if stage:
        base, coal = stage["baseline"], stage["coalesced"]
        lines.append(
            f"  serve stage ({stage['connections']} connections, "
            f"window={stage['window']}): per-request "
            f"{base['requests_per_second']:,.1f} req/s -> "
            f"coalesced+offloaded {coal['requests_per_second']:,.1f} req/s "
            f"({stage['speedup']:.2f}x), worst loop stall "
            f"{coal['max_stall_ms']:.2f} ms, TPL gap {coal['tpl_gap']:.2e}"
        )
    lines.append(
        f"  floor: socket >= {CI_MIN_SOCKET_RATIO:g}x pipe throughput, "
        f"coalesced serve >= {CI_MIN_SERVE_SPEEDUP:g}x per-request, "
        f"stall < {CI_MAX_STALL_MS:g} ms, bit-identical TPL, every "
        "serve request completed"
    )
    return "\n".join(lines)


def test_net_overhead_and_serve_floor(show_table):
    """Harness-scale comparison.  Bit-identical TPL across transports is
    asserted unconditionally; the socket throughput floor is loose (CRC
    + TCP on loopback is honest overhead) but catches a collapsed
    transport; the serve run must complete everything with real
    percentiles."""
    summary = compare(users=2_000, cohorts=16, steps=128, serve_count=128)
    show_table(format_table(summary))
    emit_json(summary, JSON_PATH)
    by_transport = {row["transport"]: row for row in summary["results"]}
    assert by_transport["socket"]["tpl_gap_vs_pipe"] == 0.0
    assert (
        by_transport["socket"]["throughput_ratio_vs_pipe"]
        >= CI_MIN_SOCKET_RATIO
    )
    serve = summary["serve"]
    assert serve["completed"] == serve["count"]
    assert serve["errors"] == 0
    assert serve["latency_ms"]  # non-empty percentiles
    assert all(
        value is None or value > 0 for value in serve["latency_ms"].values()
    )
    assert serve["latency_ms"].get("p50") is not None
    stage = summary["stages"]["serve_throughput"]
    for label in ("baseline", "coalesced"):
        row = stage[label]
        assert row["completed"] == stage["count"], label
        assert row["errors"] == 0, label
        # The hard bit-identity gate: per-seq payloads and final TPL
        # must match the serial in-process run exactly, both paths.
        assert row["payload_mismatches"] == 0, label
        assert row["tpl_gap"] == 0.0, label
    assert stage["speedup"] >= CI_MIN_SERVE_SPEEDUP
    assert stage["coalesced"]["max_stall_ms"] < CI_MAX_STALL_MS

    # The offload's SLO under the worst schedule we have: adversarial
    # volleys of 2x the queue bound must not freeze the event loop.
    adversarial = run_loadgen(
        users=20,
        rate=2000.0,
        count=200,
        window=4,
        queue_size=32,
        schedule="adversarial",
        target="inprocess",
    )
    assert adversarial["completed"] == 200
    assert adversarial["loop_stall_ms"] is not None
    assert adversarial["loop_stall_ms"] < CI_MAX_STALL_MS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=20_000)
    parser.add_argument("--cohorts", type=int, default=16)
    parser.add_argument("--steps", type=int, default=256)
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--states", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--window", type=int, default=WINDOW)
    parser.add_argument("--serve-count", type=int, default=200)
    parser.add_argument("--serve-users", type=int, default=50)
    parser.add_argument("--serve-rate", type=float, default=2000.0)
    parser.add_argument("-o", "--output", default=JSON_PATH)
    args = parser.parse_args()
    summary = compare(
        users=args.users,
        cohorts=args.cohorts,
        steps=args.steps,
        epsilon=args.epsilon,
        states=args.states,
        seed=args.seed,
        window=args.window,
        serve_count=args.serve_count,
        serve_users=args.serve_users,
        serve_rate=args.serve_rate,
    )
    print(format_table(summary))
    path = emit_json(summary, args.output)
    print(f"results written to {path}")


if __name__ == "__main__":
    main()
