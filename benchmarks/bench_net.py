"""Socket vs. pipe shard RPC overhead, and serve-over-TCP throughput.

Two questions the network tier must answer with numbers:

1. **What does the framed socket transport cost per window?**  The
   coordinator exchanges the same RPC with each shard either over a
   multiprocessing pipe or a length-prefixed CRC-checked TCP frame
   (:mod:`repro.net.frames`).  Both carry pickled payloads; the socket
   adds checksumming and kernel TCP on top of the pipe's plain
   byte channel.  The accounting answers must not move at all -- the
   max-TPL gap is asserted to be exactly zero -- and the socket path
   must stay within a sane factor of pipe throughput (the parity suite
   enforces bit-identity property-based; this file puts a floor under
   the cost).

2. **How many requests/sec does the TCP front door serve?**  An
   in-process :class:`~repro.net.server.ReproServer` is driven by the
   loadgen TCP client at window=64 and must complete every request with
   non-empty latency percentiles.

Run standalone for full-scale numbers::

    PYTHONPATH=src python benchmarks/bench_net.py --users 20000 --steps 256

or as part of the benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_net.py -s
"""

import argparse
import asyncio
import os
import time

from _harness import emit_json, population
from repro.net.server import ReproServer
from repro.obs.loadgen import run_loadgen
from repro.service import ReleaseSession, ReleaseWindow, SessionConfig

WINDOW = 64
SHARDS = 2
# The socket transport re-buys the pipe's work plus CRC + TCP; at
# harness scale (tiny windows, loopback) the floor is deliberately
# loose -- it catches a transport that collapsed (accidental
# per-byte writes, sync handshakes per op), not honest overhead.
CI_MIN_SOCKET_RATIO = 0.2
JSON_PATH = "BENCH_net.json"


def run_transport(population, steps, epsilon, window, transport):
    """Time a sharded accounting session on one shard transport."""
    session = ReleaseSession(
        SessionConfig(
            correlations=population,
            budgets=epsilon,
            backend="fleet",
            shards=SHARDS,
            shard_transport=transport,
            window_size=window,
        )
    )
    try:
        start = time.perf_counter()
        done = 0
        while done < steps:
            size = min(window, steps - done)
            session.ingest_window(ReleaseWindow.from_snapshots([None] * size))
            done += size
        elapsed = time.perf_counter() - start
        assert session.horizon == steps
        return session.max_tpl(), elapsed
    finally:
        session.close()


def serve_throughput(users, count, window, rate, seed):
    """Requests/sec through a real ReproServer on loopback, driven by
    the loadgen TCP client.  The server's event loop runs in a
    background thread because ``run_loadgen`` owns the foreground loop
    for the client side."""
    import threading

    from repro.markov import two_state_matrix

    matrix = two_state_matrix(0.8, 0.1)
    config = SessionConfig(
        correlations={u: (matrix, matrix) for u in range(users)},
        budgets=0.1,
        window_size=window,
        queue_maxsize=2 * window,
        seed=seed,
    )
    server = ReproServer(config)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    def on_loop(coroutine, timeout=60):
        return asyncio.run_coroutine_threadsafe(coroutine, loop).result(
            timeout
        )

    try:
        host, port = on_loop(server.start("127.0.0.1", 0))
        report = run_loadgen(
            users=users,
            rate=rate,
            count=count,
            window=window,
            queue_size=2 * window,
            seed=seed,
            target="connect",
            address=f"{host}:{port}",
        )
        on_loop(server.stop())
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
    return report


def compare(
    users: int = 20_000,
    cohorts: int = 16,
    steps: int = 256,
    epsilon: float = 0.1,
    states: int = 3,
    seed: int = 0,
    window: int = WINDOW,
    serve_count: int = 200,
    serve_users: int = 50,
    serve_rate: float = 2000.0,
) -> dict:
    """Both transports over the same stream, plus a serve run."""
    pop = population(users, cohorts, states, seed)
    rows = []
    baseline_tpl = None
    baseline_rate = None
    for transport in ("pipe", "socket"):
        tpl, elapsed = run_transport(pop, steps, epsilon, window, transport)
        rate = steps / max(elapsed, 1e-12)
        if baseline_tpl is None:
            baseline_tpl, baseline_rate = tpl, rate
        rows.append(
            {
                "transport": transport,
                "max_tpl": tpl,
                "seconds": elapsed,
                "events_per_second": rate,
                "windows_per_second": rate / window,
                "tpl_gap_vs_pipe": abs(tpl - baseline_tpl),
                "throughput_ratio_vs_pipe": rate / baseline_rate,
            }
        )
    serve = serve_throughput(
        serve_users, serve_count, window, serve_rate, seed
    )
    return {
        "users": users,
        "cohorts": cohorts,
        "steps": steps,
        "epsilon": epsilon,
        "window": window,
        "shards": SHARDS,
        "cpu_count": os.cpu_count(),
        "min_socket_ratio": CI_MIN_SOCKET_RATIO,
        "results": rows,
        "serve": {
            "users": serve_users,
            "count": serve_count,
            "window": window,
            "offered_rate": serve_rate,
            "completed": serve["completed"],
            "errors": serve["errors"],
            "requests_per_second": serve["achieved_rate"],
            "latency_ms": serve["latency_ms"],
        },
    }


def format_table(summary: dict) -> str:
    lines = [
        f"socket vs pipe shard RPC -- {summary['users']} users, "
        f"{summary['shards']} shards, {summary['steps']} steps, "
        f"window={summary['window']}, {summary['cpu_count']} cpu(s)",
        "  transport  events/s      ratio vs pipe   max-TPL gap",
    ]
    for row in summary["results"]:
        lines.append(
            f"  {row['transport']:<10s} {row['events_per_second']:<13,.1f} "
            f"{row['throughput_ratio_vs_pipe']:<15.2f} "
            f"{row['tpl_gap_vs_pipe']:.2e}"
        )
    serve = summary["serve"]
    lat = serve["latency_ms"]
    p50 = lat.get("p50")
    p99 = lat.get("p99")
    lines.append(
        f"  serve over TCP: {serve['requests_per_second']:,.1f} req/s "
        f"({serve['completed']}/{serve['count']} completed, "
        f"p50 {p50:.1f} ms, p99 {p99:.1f} ms)"
        if p50 is not None and p99 is not None
        else "  serve over TCP: no completed requests"
    )
    lines.append(
        f"  floor: socket >= {CI_MIN_SOCKET_RATIO:g}x pipe throughput, "
        "bit-identical TPL, every serve request completed"
    )
    return "\n".join(lines)


def test_net_overhead_and_serve_floor(show_table):
    """Harness-scale comparison.  Bit-identical TPL across transports is
    asserted unconditionally; the socket throughput floor is loose (CRC
    + TCP on loopback is honest overhead) but catches a collapsed
    transport; the serve run must complete everything with real
    percentiles."""
    summary = compare(users=2_000, cohorts=16, steps=128, serve_count=128)
    show_table(format_table(summary))
    emit_json(summary, JSON_PATH)
    by_transport = {row["transport"]: row for row in summary["results"]}
    assert by_transport["socket"]["tpl_gap_vs_pipe"] == 0.0
    assert (
        by_transport["socket"]["throughput_ratio_vs_pipe"]
        >= CI_MIN_SOCKET_RATIO
    )
    serve = summary["serve"]
    assert serve["completed"] == serve["count"]
    assert serve["errors"] == 0
    assert serve["latency_ms"]  # non-empty percentiles
    assert all(
        value is None or value > 0 for value in serve["latency_ms"].values()
    )
    assert serve["latency_ms"].get("p50") is not None


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=20_000)
    parser.add_argument("--cohorts", type=int, default=16)
    parser.add_argument("--steps", type=int, default=256)
    parser.add_argument("--epsilon", type=float, default=0.1)
    parser.add_argument("--states", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--window", type=int, default=WINDOW)
    parser.add_argument("--serve-count", type=int, default=200)
    parser.add_argument("--serve-users", type=int, default=50)
    parser.add_argument("--serve-rate", type=float, default=2000.0)
    parser.add_argument("-o", "--output", default=JSON_PATH)
    args = parser.parse_args()
    summary = compare(
        users=args.users,
        cohorts=args.cohorts,
        steps=args.steps,
        epsilon=args.epsilon,
        states=args.states,
        seed=args.seed,
        window=args.window,
        serve_count=args.serve_count,
        serve_users=args.serve_users,
        serve_rate=args.serve_rate,
    )
    print(format_table(summary))
    path = emit_json(summary, args.output)
    print(f"results written to {path}")


if __name__ == "__main__":
    main()
